// Package sim is a deterministic discrete-event simulator implementing
// the harness runtime API.
//
// It stands in for the paper's POWER7 testbed: threads execute in
// virtual time on a configurable number of hardware contexts, mutexes
// grant FIFO, barriers release on the last arrival, and condition
// variables pair signals to waiters in FIFO order. Every
// synchronization event is emitted to a trace.Collector with
// virtual-nanosecond timestamps, so runs are bit-for-bit reproducible:
// the same workload, parameters and seed always produce the same trace
// and therefore the same analysis — which is what makes the what-if
// validation experiments (re-run with an optimized lock, compare
// completion times) meaningful.
//
// Scheduling model: a thread occupies a hardware context whenever it is
// not blocked. Compute(d) advances the thread d virtual nanoseconds;
// synchronization operations are instantaneous except for the optional
// Config.LockOverhead/ContentionPenalty, which model lock handoff and
// cache-line migration costs inside the critical section. When more
// threads are runnable than contexts exist, the surplus waits in a FIFO
// ready queue (modelling oversubscription).
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"critlock/internal/harness"
	"critlock/internal/trace"
)

// Config parameterizes a simulation.
type Config struct {
	// Contexts is the number of hardware contexts (the paper's machine
	// has 24). Zero or negative means unlimited.
	Contexts int
	// Seed seeds every thread's PRNG (combined with its thread ID).
	Seed int64
	// LockOverhead is virtual time consumed inside every critical
	// section entry, modelling the cost of the atomic lock operation.
	LockOverhead trace.Time
	// ContentionPenalty is additional virtual time consumed on
	// contended entries, modelling cache-line migration between cores.
	ContentionPenalty trace.Time
	// WakePolicy selects which waiter a released mutex is granted to
	// (FIFO by default; LIFO/random for the fairness ablation).
	WakePolicy WakePolicy
	// Quantum, when positive, enables round-robin time slicing: a
	// thread whose compute exceeds the quantum yields its hardware
	// context to queued ready threads. Zero (the default) models
	// run-to-block scheduling; the quantum only matters when threads
	// outnumber contexts.
	Quantum trace.Time
}

// Sim is a single simulation run. Create with New, execute with Run.
// A Sim must not be reused after Run returns.
type Sim struct {
	cfg Config
	col *trace.Collector

	now      trace.Time
	timerSeq uint64
	timers   timerHeap

	freeCtx   int
	unlimited bool
	readyQ    []*thread
	dispatchQ bool

	threads []*thread
	live    int
	rng     *rand.Rand

	yield   chan struct{}
	err     error
	aborted bool
}

// New returns a simulator with the given configuration.
func New(cfg Config) *Sim {
	s := &Sim{
		cfg:   cfg,
		col:   trace.NewCollector(),
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D)),
	}
	if cfg.Contexts <= 0 {
		s.unlimited = true
	} else {
		s.freeCtx = cfg.Contexts
	}
	s.col.SetMeta("backend", "sim")
	s.col.SetMeta("contexts", fmt.Sprint(cfg.Contexts))
	s.col.SetMeta("seed", fmt.Sprint(cfg.Seed))
	return s
}

// SetMeta implements harness.Runtime.
func (s *Sim) SetMeta(key, value string) { s.col.SetMeta(key, value) }

// SetSink attaches a streaming trace writer; attach before Run.
func (s *Sim) SetSink(sw *trace.StreamWriter) error { return s.col.SetSink(sw) }

// Collector exposes the simulator's trace collector so callers can
// configure spilling (trace.Collector.SetSpill) or finish a spilled
// run through segment.Spiller.Finish.
func (s *Sim) Collector() *trace.Collector { return s.col }

// Now returns the current virtual time (valid during Run).
func (s *Sim) Now() trace.Time { return s.now }

// NewMutex implements harness.Runtime.
func (s *Sim) NewMutex(name string) harness.Mutex {
	return &mutex{sim: s, id: s.col.RegisterObject(trace.ObjMutex, name, 0), name: name}
}

// NewBarrier implements harness.Runtime.
func (s *Sim) NewBarrier(name string, parties int) harness.Barrier {
	if parties < 1 {
		panic("sim: barrier needs at least one party")
	}
	return &barrier{sim: s, id: s.col.RegisterObject(trace.ObjBarrier, name, parties), name: name, parties: parties}
}

// NewCond implements harness.Runtime.
func (s *Sim) NewCond(name string) harness.Cond {
	return &cond{sim: s, id: s.col.RegisterObject(trace.ObjCond, name, 0), name: name}
}

// Run executes main as the root thread and drives the simulation until
// every thread finishes, a thread panics, or a deadlock is detected.
// It returns the collected trace and the final virtual time.
func (s *Sim) Run(main func(harness.Proc)) (*trace.Trace, trace.Time, error) {
	root := s.newThread("main", trace.NoThread, main)
	s.makeReady(root)

	for s.live > 0 && s.err == nil {
		if len(s.timers) == 0 {
			s.err = s.deadlockError()
			break
		}
		tm := heap.Pop(&s.timers).(*timer)
		if tm.when < s.now {
			s.err = fmt.Errorf("sim: timer scheduled in the past (%d < %d)", tm.when, s.now)
			break
		}
		s.now = tm.when
		tm.fn()
	}
	s.drain()
	return s.col.Finish(), s.now, s.err
}

// drain unwinds every still-parked thread goroutine after an error so
// failed runs do not leak goroutines. Resumed threads observe
// s.aborted and unwind via an abort panic that finish() swallows.
func (s *Sim) drain() {
	if s.live == 0 {
		return
	}
	s.aborted = true
	for _, th := range s.threads {
		if !th.done {
			s.resume(th)
		}
	}
}

// after schedules fn at now+d in scheduler context.
func (s *Sim) after(d trace.Time, fn func()) {
	s.timerSeq++
	heap.Push(&s.timers, &timer{when: s.now + d, seq: s.timerSeq, fn: fn})
}

// makeReady queues th for a hardware context and ensures a dispatch.
// Safe from both scheduler and thread context.
func (s *Sim) makeReady(th *thread) {
	s.readyQ = append(s.readyQ, th)
	s.scheduleDispatch()
}

func (s *Sim) scheduleDispatch() {
	if s.dispatchQ {
		return
	}
	s.dispatchQ = true
	s.after(0, s.dispatch)
}

// dispatch hands free contexts to ready threads in FIFO order. Runs in
// scheduler context only.
func (s *Sim) dispatch() {
	s.dispatchQ = false
	for len(s.readyQ) > 0 && (s.unlimited || s.freeCtx > 0) {
		th := s.readyQ[0]
		s.readyQ = s.readyQ[1:]
		if !s.unlimited {
			s.freeCtx--
		}
		th.hasContext = true
		s.resume(th)
		if s.err != nil {
			return
		}
	}
}

// resume transfers control to th until it yields. Scheduler context
// only.
func (s *Sim) resume(th *thread) {
	th.resume <- struct{}{}
	<-s.yield
}

// releaseContext frees th's context. Called from thread context just
// before blocking or exiting; the freed context is handed out by a
// zero-delay dispatch so the current thread finishes its step first.
func (s *Sim) releaseContext(th *thread) {
	if !th.hasContext {
		return
	}
	th.hasContext = false
	if !s.unlimited {
		s.freeCtx++
	}
	if len(s.readyQ) > 0 {
		s.scheduleDispatch()
	}
}

// deadlockError reports which threads are blocked on what.
func (s *Sim) deadlockError() error {
	msg := "sim: deadlock: no runnable threads and no pending timers;"
	n := 0
	for _, th := range s.threads {
		if th.done {
			continue
		}
		msg += fmt.Sprintf(" %s(%s)", th.name, th.blockedOn)
		n++
	}
	if n == 0 {
		return fmt.Errorf("sim: scheduler stalled with %d live threads unaccounted for", s.live)
	}
	return fmt.Errorf("%s", msg)
}

type timer struct {
	when trace.Time
	seq  uint64
	fn   func()
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
