package sim

import (
	"critlock/internal/trace"
)

// WakePolicy selects which waiter an unlock hands the mutex to. FIFO
// is the default and matches a fair (ticket-style) lock; LIFO and
// random model unfair locks and exist for the fairness ablation
// experiment.
type WakePolicy uint8

const (
	WakeFIFO WakePolicy = iota
	WakeLIFO
	WakeRandom
)

// String names the policy.
func (p WakePolicy) String() string {
	switch p {
	case WakeFIFO:
		return "fifo"
	case WakeLIFO:
		return "lifo"
	case WakeRandom:
		return "random"
	}
	return "unknown"
}

// mutex is the simulator's lock, usable both exclusively (Lock) and
// shared (RLock, reader-writer semantics, write-preferring like Go's
// sync.RWMutex). Ownership changes happen atomically in virtual time:
// the released lock is granted to the chosen waiter at the release
// instant, which is exactly the dependency the paper's waker
// resolution assumes ("the thread holding the same lock adjacently
// before the blocked thread").
type mutex struct {
	sim  *Sim
	id   trace.ObjID
	name string
	// owner is the exclusive holder; readers counts shared holders
	// (mutually exclusive states).
	owner   *thread
	readers int
	waiters []lockWaiter
}

// lockWaiter is one queued acquisition.
type lockWaiter struct {
	th     *thread
	shared bool
}

// Name implements harness.Mutex.
func (m *mutex) Name() string { return m.name }

// free reports whether the lock has no holder at all.
func (m *mutex) free() bool { return m.owner == nil && m.readers == 0 }

// writerWaiting reports whether an exclusive acquisition is queued
// (new readers must queue behind it — write preference).
func (m *mutex) writerWaiting() bool {
	for _, w := range m.waiters {
		if !w.shared {
			return true
		}
	}
	return false
}

// pickWaiter removes and returns the next waiter per the wake policy.
// The policy only reorders pure-writer queues; mixed queues use FIFO
// so reader batches stay well-defined.
func (m *mutex) pickWaiter() lockWaiter {
	var i int
	switch m.sim.cfg.WakePolicy {
	case WakeLIFO:
		i = len(m.waiters) - 1
	case WakeRandom:
		i = m.sim.rng.Intn(len(m.waiters))
	default:
		i = 0
	}
	w := m.waiters[i]
	m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
	return w
}

// wake grants the free lock to queued waiters: either one writer, or
// the longest prefix of readers. Must only be called when free().
func (m *mutex) wake() {
	if len(m.waiters) == 0 {
		return
	}
	if !m.waiters[0].shared {
		if !m.writerWaitingShared() {
			// Pure writer queue: the wake policy may reorder.
			w := m.pickWaiter()
			m.grantWrite(w.th, true)
			return
		}
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.grantWrite(w.th, true)
		return
	}
	for len(m.waiters) > 0 && m.waiters[0].shared {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.grantRead(w.th, true)
	}
}

// writerWaitingShared reports whether the queue mixes readers in.
func (m *mutex) writerWaitingShared() bool {
	for _, w := range m.waiters {
		if w.shared {
			return true
		}
	}
	return false
}

// grantWrite hands exclusive ownership to w at the current instant:
// emit the contended obtain (plus cond-wait-end when w is reacquiring
// inside a condition wait) and make w runnable.
func (m *mutex) grantWrite(w *thread, contended bool) {
	s := m.sim
	m.owner = w
	arg := int64(0)
	if contended {
		arg = trace.LockArgContended
	}
	w.buf.Emit(s.now, trace.EvLockObtain, m.id, arg)
	if w.condReacquire != trace.NoObj {
		w.buf.Emit(s.now, trace.EvCondWaitEnd, w.condReacquire, int64(m.id))
		w.condReacquire = trace.NoObj
	}
	w.blockedOn = ""
	s.makeReady(w)
}

// grantRead admits w as a shared holder.
func (m *mutex) grantRead(w *thread, contended bool) {
	s := m.sim
	m.readers++
	arg := int64(trace.LockArgShared)
	if contended {
		arg |= trace.LockArgContended
	}
	w.buf.Emit(s.now, trace.EvLockObtain, m.id, arg)
	w.blockedOn = ""
	s.makeReady(w)
}

// barrier is a counting barrier: the episode releases when the
// parties-th thread arrives.
type barrier struct {
	sim     *Sim
	id      trace.ObjID
	name    string
	parties int
	waiting []*thread
}

// Name implements harness.Barrier.
func (b *barrier) Name() string { return b.name }

// Parties implements harness.Barrier.
func (b *barrier) Parties() int { return b.parties }

// condWaiter records a blocked condition wait: the thread, the cond it
// waits on (for the wait-end event) and the mutex it must reacquire.
type condWaiter struct {
	th *thread
	c  trace.ObjID
	m  *mutex
}

// cond is a condition variable with FIFO signal-to-waiter pairing.
type cond struct {
	sim     *Sim
	id      trace.ObjID
	name    string
	waiters []condWaiter
}

// Name implements harness.Cond.
func (c *cond) Name() string { return c.name }
