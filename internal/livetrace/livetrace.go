// Package livetrace is the real-execution backend of the harness API:
// threads are goroutines, mutexes wrap sync.Mutex, and timestamps come
// from the monotonic clock.
//
// It corresponds to the paper's Pthreads interposition library: every
// primitive emits the same MAGIC-point events (acquire/obtain/release,
// barrier arrive/depart, cond wait/signal, create/join/exit) to a
// trace.Collector, and contention is detected with a try-lock first,
// exactly the strategy of the paper's Fig. 4 ("We firstly try to
// acquire the lock by calling the trylock routine").
//
// One deliberate deviation: the release event is stamped immediately
// before the real unlock rather than after it (the paper stamps
// after). Stamping first guarantees that a waiter's obtain timestamp
// is never earlier than its waker's release timestamp, which keeps the
// analyzer's waker resolution exact at the cost of a few nanoseconds
// of apparent hold time.
//
// Unlike the simulator, this backend measures wall time on the host
// machine: results are not deterministic and there is no deadlock
// detection. It exists so the analysis can be applied to real Go
// programs; all reproduced experiments run on internal/sim.
package livetrace

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"critlock/internal/harness"
	"critlock/internal/trace"
)

// Config parameterizes the live runtime.
type Config struct {
	// Seed seeds per-thread PRNGs.
	Seed int64
	// SpinThreshold: Compute durations up to this limit busy-spin (high
	// timestamp fidelity); longer ones sleep (no CPU burn). Default 1ms.
	SpinThreshold time.Duration
}

// Runtime is the live harness backend. Create with New; Run (or the
// Begin/End pair) may be called once.
type Runtime struct {
	cfg   Config
	col   *trace.Collector
	epoch time.Time

	mu      sync.Mutex
	wg      sync.WaitGroup
	ran     bool
	root    *proc
	procs   []*proc
	adopted []*proc
	errs    []error
}

var _ harness.Runtime = (*Runtime)(nil)

// New returns a live runtime.
func New(cfg Config) *Runtime {
	if cfg.SpinThreshold <= 0 {
		cfg.SpinThreshold = time.Millisecond
	}
	rt := &Runtime{cfg: cfg, col: trace.NewCollector(), epoch: time.Now()}
	rt.col.SetMeta("backend", "live")
	rt.col.SetMeta("seed", fmt.Sprint(cfg.Seed))
	return rt
}

// SetMeta implements harness.Runtime.
func (rt *Runtime) SetMeta(key, value string) { rt.col.SetMeta(key, value) }

// SetSink attaches a streaming trace writer so long recordings spill
// to disk incrementally; attach before Run and Close after it.
func (rt *Runtime) SetSink(sw *trace.StreamWriter) error { return rt.col.SetSink(sw) }

// Collector exposes the runtime's trace collector so callers can
// configure spilling (trace.Collector.SetSpill) or finish a spilled
// run through segment.Spiller.Finish.
func (rt *Runtime) Collector() *trace.Collector { return rt.col }

func (rt *Runtime) now() trace.Time { return trace.Time(time.Since(rt.epoch)) }

// NewMutex implements harness.Runtime.
func (rt *Runtime) NewMutex(name string) harness.Mutex {
	return &liveMutex{rt: rt, id: rt.col.RegisterObject(trace.ObjMutex, name, 0), name: name}
}

// NewBarrier implements harness.Runtime.
func (rt *Runtime) NewBarrier(name string, parties int) harness.Barrier {
	if parties < 1 {
		panic("livetrace: barrier needs at least one party")
	}
	b := &liveBarrier{rt: rt, id: rt.col.RegisterObject(trace.ObjBarrier, name, parties), name: name, parties: parties}
	b.cv = sync.NewCond(&b.mu)
	return b
}

// NewCond implements harness.Runtime.
func (rt *Runtime) NewCond(name string) harness.Cond {
	return &liveCond{rt: rt, id: rt.col.RegisterObject(trace.ObjCond, name, 0), name: name}
}

// Run implements harness.Runtime: main runs on the calling goroutine;
// Run returns after every spawned thread has finished.
func (rt *Runtime) Run(main func(harness.Proc)) (*trace.Trace, trace.Time, error) {
	rt.mu.Lock()
	if rt.ran {
		rt.mu.Unlock()
		return nil, 0, fmt.Errorf("livetrace: Run called twice")
	}
	rt.ran = true
	rt.mu.Unlock()

	root := rt.newProc("main", trace.NoThread)
	root.runBody(main)
	rt.wg.Wait()
	elapsed := rt.now()
	tr := rt.col.Finish()

	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.errs) > 0 {
		return tr, elapsed, fmt.Errorf("livetrace: %d thread(s) panicked, first: %w", len(rt.errs), rt.errs[0])
	}
	return tr, elapsed, nil
}

// Begin starts a recording rooted at the calling goroutine instead of
// running a supplied body: the instrumented-program entry point
// (critlock/clrt) cannot invert control the way Run does, because the
// target's main is already executing. The returned Proc must be used
// from the calling goroutine only, and the recording is closed with
// End. Begin and Run are mutually exclusive; either may run once.
func (rt *Runtime) Begin(name string) (harness.Proc, error) {
	rt.mu.Lock()
	if rt.ran {
		rt.mu.Unlock()
		return nil, fmt.Errorf("livetrace: recording already started")
	}
	rt.ran = true
	rt.mu.Unlock()
	if name == "" {
		name = "main"
	}
	root := rt.newProc(name, trace.NoThread)
	root.buf.Emit(rt.now(), trace.EvThreadStart, trace.NoObj, int64(root.creator))
	rt.mu.Lock()
	rt.root = root
	rt.mu.Unlock()
	return root, nil
}

// Adopt registers the calling goroutine as a traced thread without a
// spawn edge from Proc.Go. It exists for instrumented programs in
// which a goroutine was created by un-instrumented code (a library
// callback, an http server worker) and then touches an instrumented
// primitive: rather than crash or corrupt the trace, the goroutine is
// adopted as a child of the root thread, creation stamped at adoption
// time. Adopted threads are not waited for by End; their exit events
// are stamped when the recording closes, so they should be quiescent
// by then. Requires Begin.
func (rt *Runtime) Adopt(name string) harness.Proc {
	rt.mu.Lock()
	root := rt.root
	rt.mu.Unlock()
	if root == nil {
		panic("livetrace: Adopt before Begin")
	}
	p := rt.newProc(name, root.id)
	// The creator-side create event makes the adoption visible to the
	// analyzer's waker resolution (thread start ← creator's create).
	// Emitting into the root buffer from here is safe — ThreadBuffer
	// serializes appends — and the shared sequence counter orders the
	// create before the start.
	root.buf.Emit(rt.now(), trace.EvThreadCreate, trace.NoObj, int64(p.id))
	p.buf.Emit(rt.now(), trace.EvThreadStart, trace.NoObj, int64(p.creator))
	rt.mu.Lock()
	rt.adopted = append(rt.adopted, p)
	rt.mu.Unlock()
	return p
}

// End closes a recording opened with Begin: it stamps the root
// thread's exit, waits for every thread spawned through Proc.Go,
// stamps adopted threads' exits, and returns the merged trace with the
// elapsed wall time. Panics recovered in spawned threads are reported
// like Run reports them.
func (rt *Runtime) End(rootp harness.Proc) (*trace.Trace, trace.Time, error) {
	root, ok := rootp.(*proc)
	if !ok || root.rt != rt || rt.root != root {
		panic("livetrace: End with a proc that is not this runtime's root")
	}
	root.emitExit()
	close(root.done)
	rt.wg.Wait()
	rt.mu.Lock()
	adopted := append([]*proc(nil), rt.adopted...)
	rt.mu.Unlock()
	for _, p := range adopted {
		p.emitExit()
		close(p.done)
	}
	elapsed := rt.now()
	tr := rt.col.Finish()

	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.errs) > 0 {
		return tr, elapsed, fmt.Errorf("livetrace: %d thread(s) panicked, first: %w", len(rt.errs), rt.errs[0])
	}
	return tr, elapsed, nil
}

// EndNow snapshots the recording without waiting for spawned threads:
// every thread that has not yet exited gets its exit stamped at the
// current time, and the merged trace so far is returned. It exists for
// instrumented os.Exit paths, where the process is about to die and
// waiting would change its semantics. Threads still running keep
// running; anything they emit after the snapshot is simply not in the
// returned trace, and a thread cut down inside a critical section will
// show up as a validation warning (analyze such traces with validation
// off).
func (rt *Runtime) EndNow() (*trace.Trace, trace.Time) {
	rt.mu.Lock()
	procs := append([]*proc(nil), rt.procs...)
	rt.mu.Unlock()
	for _, p := range procs {
		p.emitExit()
	}
	elapsed := rt.now()
	return rt.col.Finish(), elapsed
}

func (rt *Runtime) recordErr(err error) {
	rt.mu.Lock()
	rt.errs = append(rt.errs, err)
	rt.mu.Unlock()
}

// proc is the per-goroutine execution context.
type proc struct {
	rt      *Runtime
	id      trace.ThreadID
	creator trace.ThreadID
	name    string
	buf     *trace.ThreadBuffer
	rng     *rand.Rand
	done    chan struct{}
	// exited guards the thread-exit event: exactly one of runBody's
	// epilogue, End and EndNow stamps it.
	exited atomic.Bool
}

// emitExit stamps the thread-exit event exactly once.
func (p *proc) emitExit() {
	if p.exited.CompareAndSwap(false, true) {
		p.buf.Emit(p.rt.now(), trace.EvThreadExit, trace.NoObj, 0)
	}
}

var _ harness.Proc = (*proc)(nil)
var _ harness.Thread = (*proc)(nil)

func (rt *Runtime) newProc(name string, creator trace.ThreadID) *proc {
	buf := rt.col.RegisterThread(name, creator)
	p := &proc{
		rt:      rt,
		id:      buf.Thread(),
		creator: creator,
		name:    name,
		buf:     buf,
		rng:     rand.New(rand.NewSource(rt.cfg.Seed*1000003 + int64(buf.Thread()) + 1)),
		done:    make(chan struct{}),
	}
	rt.mu.Lock()
	rt.procs = append(rt.procs, p)
	rt.mu.Unlock()
	return p
}

// runBody wraps the thread body with start/exit events, panic capture
// and join release.
func (p *proc) runBody(fn func(harness.Proc)) {
	rt := p.rt
	p.buf.Emit(rt.now(), trace.EvThreadStart, trace.NoObj, int64(p.creator))
	defer func() {
		if r := recover(); r != nil {
			rt.recordErr(fmt.Errorf("thread %s panicked: %v", p.name, r))
		}
		p.emitExit()
		close(p.done)
	}()
	fn(p)
}

// ID implements harness.Proc and harness.Thread.
func (p *proc) ID() trace.ThreadID { return p.id }

// Rand implements harness.Proc.
func (p *proc) Rand() *rand.Rand { return p.rng }

// Compute implements harness.Proc: busy-spin for short durations,
// sleep for long ones.
func (p *proc) Compute(d trace.Time) {
	if d <= 0 {
		return
	}
	dur := time.Duration(d)
	if dur > p.rt.cfg.SpinThreshold {
		time.Sleep(dur)
		return
	}
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
	}
}

// Go implements harness.Proc.
func (p *proc) Go(name string, fn func(harness.Proc)) harness.Thread {
	rt := p.rt
	child := rt.newProc(name, p.id)
	p.buf.Emit(rt.now(), trace.EvThreadCreate, trace.NoObj, int64(child.id))
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		child.runBody(fn)
	}()
	return child
}

// Join implements harness.Proc.
func (p *proc) Join(t harness.Thread) {
	target, ok := t.(*proc)
	if !ok || target.rt != p.rt {
		panic("livetrace: Join on a thread from another runtime")
	}
	p.buf.Emit(p.rt.now(), trace.EvJoinBegin, trace.NoObj, int64(target.id))
	<-target.done
	p.buf.Emit(p.rt.now(), trace.EvJoinEnd, trace.NoObj, int64(target.id))
}

// Lock implements harness.Proc with try-lock contention detection.
func (p *proc) Lock(hm harness.Mutex) {
	m, ok := hm.(*liveMutex)
	if !ok || m.rt != p.rt {
		panic("livetrace: mutex from another runtime")
	}
	p.buf.Emit(p.rt.now(), trace.EvLockAcquire, m.id, 0)
	if m.mu.TryLock() { //lint:ignore missingunlock Lock implements the protocol; the caller releases via proc.Unlock
		m.holder.Store(int64(p.id) + 1)
		p.buf.Emit(p.rt.now(), trace.EvLockObtain, m.id, 0)
		return
	}
	//lint:ignore missingunlock Lock implements the protocol; the caller releases via proc.Unlock
	m.mu.Lock()
	m.holder.Store(int64(p.id) + 1)
	p.buf.Emit(p.rt.now(), trace.EvLockObtain, m.id, 1)
}

// TryLock implements harness.Proc. A failed try emits nothing — a
// dangling acquire with no obtain would corrupt the analysis — and a
// successful one is by construction uncontended.
func (p *proc) TryLock(hm harness.Mutex) bool {
	m, ok := hm.(*liveMutex)
	if !ok || m.rt != p.rt {
		panic("livetrace: mutex from another runtime")
	}
	//lint:ignore missingunlock TryLock implements the protocol; the caller releases via proc.Unlock
	if !m.mu.TryLock() {
		return false
	}
	m.holder.Store(int64(p.id) + 1)
	p.buf.Emit(p.rt.now(), trace.EvLockAcquire, m.id, 0)
	p.buf.Emit(p.rt.now(), trace.EvLockObtain, m.id, 0)
	return true
}

// Unlock implements harness.Proc. The release event is stamped before
// the real unlock (see the package comment). Unlocking a mutex this
// thread does not own panics before any event is emitted, so the
// trace stays valid and Run reports the error — identical failure
// semantics to the simulator backend.
func (p *proc) Unlock(hm harness.Mutex) {
	m, ok := hm.(*liveMutex)
	if !ok || m.rt != p.rt {
		panic("livetrace: mutex from another runtime")
	}
	if !m.holder.CompareAndSwap(int64(p.id)+1, 0) {
		panic(fmt.Sprintf("livetrace: thread %s unlocks %q it does not own", p.name, m.name))
	}
	p.buf.Emit(p.rt.now(), trace.EvLockRelease, m.id, 0)
	m.mu.Unlock()
}

// RLock implements harness.Proc with try-lock contention detection on
// the shared path.
func (p *proc) RLock(hm harness.Mutex) {
	m, ok := hm.(*liveMutex)
	if !ok || m.rt != p.rt {
		panic("livetrace: mutex from another runtime")
	}
	p.buf.Emit(p.rt.now(), trace.EvLockAcquire, m.id, trace.LockArgShared)
	if m.mu.TryRLock() { //lint:ignore missingunlock RLock implements the protocol; the caller releases via proc.RUnlock
		m.readers.Add(1)
		p.buf.Emit(p.rt.now(), trace.EvLockObtain, m.id, trace.LockArgShared)
		return
	}
	//lint:ignore missingunlock RLock implements the protocol; the caller releases via proc.RUnlock
	m.mu.RLock()
	m.readers.Add(1)
	p.buf.Emit(p.rt.now(), trace.EvLockObtain, m.id, trace.LockArgShared|trace.LockArgContended)
}

// RUnlock implements harness.Proc. Read-unlocking with no readers
// panics before any event is emitted (see Unlock).
func (p *proc) RUnlock(hm harness.Mutex) {
	m, ok := hm.(*liveMutex)
	if !ok || m.rt != p.rt {
		panic("livetrace: mutex from another runtime")
	}
	if m.readers.Add(-1) < 0 {
		m.readers.Add(1)
		panic(fmt.Sprintf("livetrace: thread %s read-unlocks %q with no readers", p.name, m.name))
	}
	p.buf.Emit(p.rt.now(), trace.EvLockRelease, m.id, trace.LockArgShared)
	m.mu.RUnlock()
}

// TryRLocker is the shared-mode try extension: sync.RWMutex has
// TryRLock, harness.Proc does not (the simulator never needed it), so
// instrumented programs (critlock/clrt) reach it through this
// interface. Only the live backend implements it.
type TryRLocker interface {
	// TryRLock attempts a shared hold of m without blocking. Like
	// TryLock, a failed try emits no events and a successful one is by
	// construction uncontended.
	TryRLock(m harness.Mutex) bool
}

var _ TryRLocker = (*proc)(nil)

// TryRLock implements TryRLocker.
func (p *proc) TryRLock(hm harness.Mutex) bool {
	m, ok := hm.(*liveMutex)
	if !ok || m.rt != p.rt {
		panic("livetrace: mutex from another runtime")
	}
	//lint:ignore missingunlock TryRLock implements the protocol; the caller releases via proc.RUnlock
	if !m.mu.TryRLock() {
		return false
	}
	m.readers.Add(1)
	p.buf.Emit(p.rt.now(), trace.EvLockAcquire, m.id, trace.LockArgShared)
	p.buf.Emit(p.rt.now(), trace.EvLockObtain, m.id, trace.LockArgShared)
	return true
}

// BarrierWait implements harness.Proc.
func (p *proc) BarrierWait(hb harness.Barrier) {
	b, ok := hb.(*liveBarrier)
	if !ok || b.rt != p.rt {
		panic("livetrace: barrier from another runtime")
	}
	p.buf.Emit(p.rt.now(), trace.EvBarrierArrive, b.id, 0)
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.gen++
		// Stamp the last arriver's depart while still holding the
		// barrier mutex so it precedes every waiter's depart.
		p.buf.Emit(p.rt.now(), trace.EvBarrierDepart, b.id, 1)
		b.cv.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cv.Wait()
	}
	b.mu.Unlock()
	p.buf.Emit(p.rt.now(), trace.EvBarrierDepart, b.id, 0)
}

// Wait implements harness.Proc: release m, wait for a signal on c,
// reacquire m.
func (p *proc) Wait(hc harness.Cond, hm harness.Mutex) {
	c, ok := hc.(*liveCond)
	if !ok || c.rt != p.rt {
		panic("livetrace: cond from another runtime")
	}
	m, ok := hm.(*liveMutex)
	if !ok || m.rt != p.rt {
		panic("livetrace: mutex from another runtime")
	}
	ch := make(chan struct{})
	c.mu.Lock()
	c.waiters = append(c.waiters, ch)
	c.mu.Unlock()

	p.buf.Emit(p.rt.now(), trace.EvCondWaitBegin, c.id, int64(m.id))
	p.Unlock(hm)
	<-ch
	// Reacquire with the standard instrumented path so the analyzer
	// sees the mutex dependency of the wakeup.
	//lint:ignore missingunlock Wait's contract is to return with the mutex re-held
	p.Lock(hm)
	p.buf.Emit(p.rt.now(), trace.EvCondWaitEnd, c.id, int64(m.id))
}

// Signal implements harness.Proc.
func (p *proc) Signal(hc harness.Cond) {
	c, ok := hc.(*liveCond)
	if !ok || c.rt != p.rt {
		panic("livetrace: cond from another runtime")
	}
	c.mu.Lock()
	var ch chan struct{}
	if len(c.waiters) > 0 {
		ch = c.waiters[0]
		c.waiters = c.waiters[1:]
	}
	// Stamp the signal while holding the cond registry lock so the
	// analyzer's FIFO signal→waiter pairing matches reality.
	p.buf.Emit(p.rt.now(), trace.EvCondSignal, c.id, 0)
	c.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// Broadcast implements harness.Proc.
func (p *proc) Broadcast(hc harness.Cond) {
	c, ok := hc.(*liveCond)
	if !ok || c.rt != p.rt {
		panic("livetrace: cond from another runtime")
	}
	c.mu.Lock()
	waiters := c.waiters
	c.waiters = nil
	p.buf.Emit(p.rt.now(), trace.EvCondBroadcast, c.id, 0)
	c.mu.Unlock()
	for _, ch := range waiters {
		close(ch)
	}
}

// liveMutex wraps sync.RWMutex (exclusive and shared acquisition).
type liveMutex struct {
	rt   *Runtime
	id   trace.ObjID
	name string
	mu   sync.RWMutex

	// holder is the exclusive owner's thread id + 1 (0 = unheld) and
	// readers the shared-holder count. They exist so that unlocking a
	// mutex the thread does not hold fails loudly BEFORE any release
	// event reaches the trace — the same recovered-panic semantics
	// (and message shape) as the simulator backend, instead of a
	// sync.RWMutex runtime fatal after a corrupting dangling release.
	holder  atomic.Int64
	readers atomic.Int64
}

// Name implements harness.Mutex.
func (m *liveMutex) Name() string { return m.name }

// liveBarrier is a generation-counted barrier.
type liveBarrier struct {
	rt      *Runtime
	id      trace.ObjID
	name    string
	parties int

	mu    sync.Mutex
	cv    *sync.Cond
	count int
	gen   int
}

// Name implements harness.Barrier.
func (b *liveBarrier) Name() string { return b.name }

// Parties implements harness.Barrier.
func (b *liveBarrier) Parties() int { return b.parties }

// liveCond pairs signals to waiters in FIFO order via per-waiter
// channels.
type liveCond struct {
	rt   *Runtime
	id   trace.ObjID
	name string

	mu      sync.Mutex
	waiters []chan struct{}
}

// Name implements harness.Cond.
func (c *liveCond) Name() string { return c.name }
