package livetrace

import (
	"fmt"
	"sync"

	"critlock/internal/harness"
	"critlock/internal/trace"
)

// liveChan is the live backend's channel: a mutex-guarded token queue
// with per-waiter wake channels, mirroring liveCond's design rather
// than wrapping a raw Go chan. Owning the queues buys the emission
// discipline the analyzer's waker resolution depends on (and raw
// channels cannot provide): a blocked operation's completion event is
// stamped by its waker — under the channel mutex, after the waker's
// own completion — before the blocked goroutine is released, so the
// waker always precedes the wakee in (T, Seq) order, exactly as on
// the simulator backend.
type liveChan struct {
	rt       *Runtime
	id       trace.ObjID
	name     string
	capacity int

	mu sync.Mutex
	// vals is the FIFO of buffered payloads; its length is the buffer
	// occupancy. Harness-API sends (anonymous tokens) buffer nil.
	vals   []any
	closed bool
	sendq  []*liveChanWaiter
	recvq  []*liveChanWaiter
}

var _ harness.Chan = (*liveChan)(nil)

// ValProc is the payload extension this backend's procs implement on
// top of harness.Proc: channel operations that carry real Go values.
// The harness API models channels as anonymous-token queues (workloads
// care about who waits on whom, not what moves); instrumented real
// programs (critlock/clrt) need the moved values back, so their
// rewritten channel operations type-assert the current Proc to ValProc.
// Only the live backend implements it.
type ValProc interface {
	harness.Proc
	// SendVal sends v on c with Send's blocking and event semantics.
	SendVal(c harness.Chan, v any)
	// RecvVal receives from c, returning the payload (nil once c is
	// closed and drained) and the value-ok flag.
	RecvVal(c harness.Chan) (any, bool)
	// SelectVal is Select with payloads: sendVals[i] is sent if case i
	// (a send arm) is chosen; the returned value is the chosen receive
	// arm's payload (nil for send arms and the default case).
	SelectVal(cases []harness.SelectCase, sendVals []any, def bool) (int, any, bool)
	// ChanLen reports c's current buffer occupancy (len(ch)).
	ChanLen(c harness.Chan) int
}

var _ ValProc = (*proc)(nil)

// Name implements harness.Chan.
func (c *liveChan) Name() string { return c.name }

// Cap implements harness.Chan.
func (c *liveChan) Cap() int { return c.capacity }

// NewChan implements harness.Runtime. The capacity is recorded as the
// channel object's Parties, so it survives into traces and manifests.
func (rt *Runtime) NewChan(name string, capacity int) harness.Chan {
	if capacity < 0 {
		panic("livetrace: negative channel capacity")
	}
	return &liveChan{rt: rt, id: rt.col.RegisterObject(trace.ObjChan, name, capacity), name: name, capacity: capacity}
}

// liveChanWaiter is one goroutine parked on a channel operation: a
// plain send/recv (sel nil, woken via ready) or one arm of a select
// (woken via sel.ready).
type liveChanWaiter struct {
	p     *proc
	sel   *liveSelect
	idx   int
	ready chan struct{}
	// argExtra is ORed into the completion event's Arg (a select that
	// committed to an arm and then had to block parks as a plain
	// waiter but still completes with ChanArgSelect).
	argExtra int64

	ok          bool // recv result, set by the waker
	closedPanic bool // send woken by close: panic on resume
	// val is the payload: a parked sender's outgoing value (read by the
	// receiver that wakes it), or an incoming value stored by the waker
	// before a parked receiver is released.
	val any
}

// liveSelect is shared by all arms of one blocked select. The first
// waker to claim any arm wins; stale arms in other queues become
// unclaimable and are skipped.
type liveSelect struct {
	mu     sync.Mutex
	won    bool
	chosen int

	ok       bool
	val      any // received payload when the chosen arm is a receive
	closedOn *liveChan
	ready    chan struct{}
}

// claim marks w as the waiter being woken. Callers hold the channel
// mutex; the claim itself is guarded by the select's own mutex since
// arms of one select live on several channels.
func (w *liveChanWaiter) claim() bool {
	if w.sel == nil {
		return true
	}
	w.sel.mu.Lock()
	defer w.sel.mu.Unlock()
	if w.sel.won {
		return false
	}
	w.sel.won = true
	w.sel.chosen = w.idx
	return true
}

// claimSelf commits the selecting goroutine itself to case i. It
// fails when a waker on another arm won the race first.
func (sel *liveSelect) claimSelf(i int) bool {
	sel.mu.Lock()
	defer sel.mu.Unlock()
	if sel.won {
		return false
	}
	sel.won = true
	sel.chosen = i
	return true
}

func (c *liveChan) popSendLocked() *liveChanWaiter {
	for len(c.sendq) > 0 {
		w := c.sendq[0]
		c.sendq = c.sendq[1:]
		if w.claim() {
			return w
		}
	}
	return nil
}

func (c *liveChan) popRecvLocked() *liveChanWaiter {
	for len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		if w.claim() {
			return w
		}
	}
	return nil
}

// completeSendLocked stamps a blocked sender's completion into its own
// thread buffer (it is parked, so the buffer is quiescent) and wakes
// it. Caller holds c.mu.
func (c *liveChan) completeSendLocked(w *liveChanWaiter) {
	arg := int64(trace.ChanArgBlocked) | w.argExtra
	if w.sel != nil {
		arg |= trace.ChanArgSelect
		w.sel.ok = true
		w.p.buf.Emit(c.rt.now(), trace.EvChanSend, c.id, arg)
		close(w.sel.ready)
		return
	}
	w.p.buf.Emit(c.rt.now(), trace.EvChanSend, c.id, arg)
	close(w.ready)
}

// completeRecvLocked stamps a blocked receiver's completion and wakes
// it. ok is false when the wake came from close. Caller holds c.mu.
func (c *liveChan) completeRecvLocked(w *liveChanWaiter, ok bool) {
	arg := int64(trace.ChanArgBlocked) | w.argExtra
	if !ok {
		arg |= trace.ChanArgClosed
	}
	if w.sel != nil {
		arg |= trace.ChanArgSelect
		w.sel.ok = ok
		w.sel.val = w.val
		w.p.buf.Emit(c.rt.now(), trace.EvChanRecv, c.id, arg)
		close(w.sel.ready)
		return
	}
	w.ok = ok
	w.p.buf.Emit(c.rt.now(), trace.EvChanRecv, c.id, arg)
	close(w.ready)
}

// trySendLocked completes a send of v without blocking when a receiver
// is waiting or buffer space is free. Caller holds c.mu.
func (c *liveChan) trySendLocked(p *proc, arg int64, v any) bool {
	if w := c.popRecvLocked(); w != nil {
		// Direct handoff: receivers only park on an empty buffer.
		w.val = v
		p.buf.Emit(c.rt.now(), trace.EvChanSend, c.id, arg)
		c.completeRecvLocked(w, true)
		return true
	}
	if len(c.vals) < c.capacity {
		c.vals = append(c.vals, v)
		p.buf.Emit(c.rt.now(), trace.EvChanSend, c.id, arg)
		return true
	}
	return false
}

// tryRecvLocked completes a receive without blocking when a value is
// buffered, a sender is waiting, or the channel is closed and drained.
// done is false when the receive would block. Caller holds c.mu.
func (c *liveChan) tryRecvLocked(p *proc, arg int64) (v any, ok, done bool) {
	if len(c.vals) > 0 {
		v = c.vals[0]
		c.vals = c.vals[1:]
		p.buf.Emit(c.rt.now(), trace.EvChanRecv, c.id, arg)
		// The freed slot admits the longest-waiting blocked sender.
		if w := c.popSendLocked(); w != nil {
			c.vals = append(c.vals, w.val)
			c.completeSendLocked(w)
		}
		return v, true, true
	}
	if w := c.popSendLocked(); w != nil { // unbuffered rendezvous
		v = w.val
		p.buf.Emit(c.rt.now(), trace.EvChanRecv, c.id, arg)
		c.completeSendLocked(w)
		return v, true, true
	}
	if c.closed {
		p.buf.Emit(c.rt.now(), trace.EvChanRecv, c.id, arg|trace.ChanArgClosed)
		return nil, false, true
	}
	return nil, false, false
}

func (p *proc) chanOf(hc harness.Chan) *liveChan {
	c, ok := hc.(*liveChan)
	if !ok || c.rt != p.rt {
		panic("livetrace: chan from another runtime")
	}
	return c
}

// Send implements harness.Proc. Sending on a closed channel panics
// before any completion event is emitted, with the same message shape
// as the simulator backend.
func (p *proc) Send(hc harness.Chan) { p.SendVal(hc, nil) }

// SendVal is Send carrying a payload value — the instrumented-program
// path (critlock/clrt), where rewritten channels must deliver real
// values, not anonymous tokens. Event emission is identical to Send.
func (p *proc) SendVal(hc harness.Chan, v any) {
	c := p.chanOf(hc)
	p.buf.Emit(p.rt.now(), trace.EvChanSendBegin, c.id, 0)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		panic(fmt.Sprintf("livetrace: thread %s sends on closed channel %q", p.name, c.name))
	}
	if c.trySendLocked(p, 0, v) {
		c.mu.Unlock()
		return
	}
	w := &liveChanWaiter{p: p, ready: make(chan struct{}), val: v}
	c.sendq = append(c.sendq, w)
	c.mu.Unlock()
	<-w.ready
	// The waker stamped our blocked completion before releasing us.
	if w.closedPanic {
		panic(fmt.Sprintf("livetrace: thread %s sends on closed channel %q", p.name, c.name))
	}
}

// Recv implements harness.Proc.
func (p *proc) Recv(hc harness.Chan) bool {
	_, ok := p.RecvVal(hc)
	return ok
}

// RecvVal is Recv carrying the payload: it returns the received value
// (nil when the channel is closed and drained) and the value-ok flag.
func (p *proc) RecvVal(hc harness.Chan) (any, bool) {
	c := p.chanOf(hc)
	p.buf.Emit(p.rt.now(), trace.EvChanRecvBegin, c.id, 0)
	c.mu.Lock()
	if v, ok, done := c.tryRecvLocked(p, 0); done {
		c.mu.Unlock()
		return v, ok
	}
	w := &liveChanWaiter{p: p, ready: make(chan struct{})}
	c.recvq = append(c.recvq, w)
	c.mu.Unlock()
	<-w.ready
	return w.val, w.ok
}

// ChanLen reports ch's buffer occupancy — the live counterpart of
// len(ch), for instrumented programs.
func (p *proc) ChanLen(hc harness.Chan) int {
	c := p.chanOf(hc)
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.vals)
}

// Close implements harness.Proc. Blocked receivers observe
// closed-and-drained; blocked senders panic, as in Go. Closing an
// already-closed channel panics before any event is emitted.
func (p *proc) Close(hc harness.Chan) {
	c := p.chanOf(hc)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		panic(fmt.Sprintf("livetrace: thread %s closes already-closed channel %q", p.name, c.name))
	}
	c.closed = true
	p.buf.Emit(c.rt.now(), trace.EvChanClose, c.id, 0)
	for {
		w := c.popRecvLocked()
		if w == nil {
			break
		}
		c.completeRecvLocked(w, false)
	}
	for {
		w := c.popSendLocked()
		if w == nil {
			break
		}
		if w.sel != nil {
			w.sel.closedOn = c
			close(w.sel.ready)
		} else {
			w.closedPanic = true
			close(w.ready)
		}
	}
	c.mu.Unlock()
}

// Select implements harness.Proc. Cases are examined in order and the
// lowest ready index wins, matching the simulator's deterministic
// choice.
func (p *proc) Select(cases []harness.SelectCase, def bool) (int, bool) {
	i, _, ok := p.SelectVal(cases, nil, def)
	return i, ok
}

// SelectVal is Select carrying payloads: sendVals[i] is the value the
// i-th case would send (ignored for receive arms; sendVals may be nil
// when no case sends), and the second result is the chosen receive's
// value. Event emission is identical to Select.
func (p *proc) SelectVal(cases []harness.SelectCase, sendVals []any, def bool) (int, any, bool) {
	sendVal := func(i int) any {
		if i < len(sendVals) {
			return sendVals[i]
		}
		return nil
	}
	arg := int64(0)
	if def {
		arg = 1
	}
	p.buf.Emit(p.rt.now(), trace.EvSelect, trace.NoObj, arg)
	if def {
		for i, sc := range cases {
			c := p.chanOf(sc.Ch)
			c.mu.Lock()
			if sc.Send {
				if c.closed {
					c.mu.Unlock()
					panic(fmt.Sprintf("livetrace: thread %s sends on closed channel %q", p.name, c.name))
				}
				if c.trySendLocked(p, trace.ChanArgSelect, sendVal(i)) {
					c.mu.Unlock()
					return i, nil, true
				}
			} else if v, ok, done := c.tryRecvLocked(p, trace.ChanArgSelect); done {
				c.mu.Unlock()
				return i, v, ok
			}
			c.mu.Unlock()
		}
		return -1, nil, true
	}

	sel := &liveSelect{chosen: -1, ok: true, ready: make(chan struct{})}
	for i, sc := range cases {
		c := p.chanOf(sc.Ch)
		c.mu.Lock()
		if sc.Send {
			if c.closed {
				c.mu.Unlock()
				panic(fmt.Sprintf("livetrace: thread %s sends on closed channel %q", p.name, c.name))
			}
			if len(c.vals) < c.capacity || len(c.recvq) > 0 {
				if !sel.claimSelf(i) {
					c.mu.Unlock()
					break // an earlier arm already fired; go collect it
				}
				if c.trySendLocked(p, trace.ChanArgSelect, sendVal(i)) {
					c.mu.Unlock()
					return i, nil, true
				}
				// The apparently-ready receiver was stolen by a racing
				// select; we are committed to this arm, so block on it.
				w := &liveChanWaiter{p: p, ready: make(chan struct{}), argExtra: trace.ChanArgSelect, val: sendVal(i)}
				c.sendq = append(c.sendq, w)
				c.mu.Unlock()
				<-w.ready
				if w.closedPanic {
					panic(fmt.Sprintf("livetrace: thread %s sends on closed channel %q", p.name, c.name))
				}
				return i, nil, true
			}
		} else if len(c.vals) > 0 || c.closed || len(c.sendq) > 0 {
			if !sel.claimSelf(i) {
				c.mu.Unlock()
				break
			}
			if v, ok, done := c.tryRecvLocked(p, trace.ChanArgSelect); done {
				c.mu.Unlock()
				return i, v, ok
			}
			w := &liveChanWaiter{p: p, ready: make(chan struct{}), argExtra: trace.ChanArgSelect}
			c.recvq = append(c.recvq, w)
			c.mu.Unlock()
			<-w.ready
			return i, w.val, w.ok
		}
		w := &liveChanWaiter{p: p, sel: sel, idx: i, val: sendVal(i)}
		if sc.Send {
			c.sendq = append(c.sendq, w)
		} else {
			c.recvq = append(c.recvq, w)
		}
		c.mu.Unlock()
	}
	<-sel.ready
	if sel.closedOn != nil {
		panic(fmt.Sprintf("livetrace: thread %s sends on closed channel %q", p.name, sel.closedOn.name))
	}
	return sel.chosen, sel.val, sel.ok
}
