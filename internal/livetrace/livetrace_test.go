package livetrace

import (
	"strings"
	"testing"
	"time"

	"critlock/internal/core"
	"critlock/internal/harness"
	"critlock/internal/trace"
)

func TestLiveBasicTrace(t *testing.T) {
	rt := New(Config{Seed: 1})
	m := rt.NewMutex("hot")
	rt.SetMeta("workload", "live-unit")
	tr, elapsed, err := rt.Run(func(p harness.Proc) {
		var kids []harness.Thread
		for i := 0; i < 3; i++ {
			kids = append(kids, p.Go("w", func(q harness.Proc) {
				for j := 0; j < 20; j++ {
					q.Compute(20_000) // 20µs
					q.Lock(m)
					q.Compute(5_000)
					q.Unlock(m)
				}
			}))
		}
		for _, k := range kids {
			p.Join(k)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed <= 0 {
		t.Fatal("elapsed not positive")
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("live trace invalid: %v", err)
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	hot := an.Lock("hot")
	if hot == nil || hot.TotalInvocations != 60 {
		t.Fatalf("hot lock invocations = %v, want 60", hot)
	}
	if !hot.Critical {
		t.Error("hot lock not on critical path")
	}
	// Live traces have scheduling noise (goroutine wakeup latency is
	// invisible to the tracer and disappears at jumps), so coverage is
	// well below the simulator's 1.0 on a loaded machine — it just has
	// to be positive and sane.
	if cov := an.CP.Coverage(); cov <= 0 || cov > 1.2 {
		t.Errorf("coverage = %.3f, want in (0, 1.2]", cov)
	}
	if tr.Meta["backend"] != "live" || tr.Meta["workload"] != "live-unit" {
		t.Errorf("meta = %v", tr.Meta)
	}
}

func TestLiveBarrier(t *testing.T) {
	rt := New(Config{})
	bar := rt.NewBarrier("phase", 4)
	tr, _, err := rt.Run(func(p harness.Proc) {
		var kids []harness.Thread
		for i := 0; i < 3; i++ {
			d := trace.Time(10_000 * (i + 1))
			kids = append(kids, p.Go("w", func(q harness.Proc) {
				q.Compute(d)
				q.BarrierWait(bar)
			}))
		}
		p.BarrierWait(bar)
		for _, k := range kids {
			p.Join(k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	last := 0
	departs := 0
	for _, e := range tr.Events {
		if e.Kind == trace.EvBarrierDepart {
			departs++
			if e.Arg == 1 {
				last++
			}
		}
	}
	if departs != 4 || last != 1 {
		t.Errorf("departs=%d last=%d, want 4/1", departs, last)
	}
}

func TestLiveCondProducerConsumer(t *testing.T) {
	rt := New(Config{})
	m := rt.NewMutex("qmu")
	cv := rt.NewCond("nonempty")
	queue := 0
	waiting := false // written under m; observable only once the consumer is parked in Wait
	tr, _, err := rt.Run(func(p harness.Proc) {
		cons := p.Go("consumer", func(q harness.Proc) {
			q.Lock(m)
			waiting = true
			for queue == 0 {
				q.Wait(cv, m)
			}
			queue--
			q.Unlock(m)
		})
		for {
			p.Lock(m)
			if waiting {
				queue++
				p.Signal(cv)
				p.Unlock(m)
				break
			}
			p.Unlock(m)
			p.Compute(100_000)
		}
		p.Join(cons)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if queue != 0 {
		t.Errorf("queue = %d, want 0", queue)
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatal(err)
	}
	if an.Threads[1].CondWait <= 0 {
		t.Error("consumer cond wait not recorded")
	}
}

func TestLivePanicCaptured(t *testing.T) {
	rt := New(Config{})
	_, _, err := rt.Run(func(p harness.Proc) {
		k := p.Go("bad", func(q harness.Proc) { panic("pow") })
		p.Join(k)
	})
	if err == nil || !strings.Contains(err.Error(), "pow") {
		t.Fatalf("err = %v, want panic capture", err)
	}
}

func TestLiveRunTwiceRejected(t *testing.T) {
	rt := New(Config{})
	if _, _, err := rt.Run(func(p harness.Proc) {}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Run(func(p harness.Proc) {}); err == nil {
		t.Error("second Run accepted")
	}
}

func TestLiveComputeSleepPath(t *testing.T) {
	rt := New(Config{SpinThreshold: 10 * time.Microsecond})
	start := time.Now()
	_, _, err := rt.Run(func(p harness.Proc) {
		p.Compute(2_000_000) // 2ms > threshold → sleep path
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Errorf("run took %v, want ≥ 2ms", d)
	}
}

func TestLiveContentionFlag(t *testing.T) {
	rt := New(Config{})
	m := rt.NewMutex("m")
	held := make(chan struct{})
	tr, _, err := rt.Run(func(p harness.Proc) {
		k := p.Go("w", func(q harness.Proc) {
			q.Lock(m)
			close(held)
			// Sleep-holding (above the spin threshold) yields the CPU
			// so the main thread genuinely contends on GOMAXPROCS=1.
			q.Compute(20_000_000)
			q.Unlock(m)
		})
		<-held // the child definitely holds the lock now
		p.Lock(m)
		p.Unlock(m)
		p.Join(k)
	})
	if err != nil {
		t.Fatal(err)
	}
	contended := 0
	for _, e := range tr.Events {
		if e.Contended() {
			contended++
		}
	}
	if contended != 1 {
		t.Errorf("contended obtains = %d, want 1", contended)
	}
}

// TestLiveRWLock: shared holds overlap on real goroutines, writers
// exclude, and the trace validates and analyzes.
func TestLiveRWLock(t *testing.T) {
	rt := New(Config{})
	m := rt.NewMutex("rw")
	readersIn := make(chan struct{}, 8)
	tr, _, err := rt.Run(func(p harness.Proc) {
		var kids []harness.Thread
		for i := 0; i < 3; i++ {
			kids = append(kids, p.Go("r", func(q harness.Proc) {
				q.RLock(m)
				readersIn <- struct{}{}
				q.Compute(5_000_000) // sleep path: all readers inside together
				q.RUnlock(m)
			}))
		}
		// Wait until all readers hold the lock simultaneously,
		// proving shared admission.
		for i := 0; i < 3; i++ {
			<-readersIn
		}
		p.Lock(m)
		p.Compute(100_000)
		p.Unlock(m)
		for _, k := range kids {
			p.Join(k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatal(err)
	}
	l := an.Lock("rw")
	if l.SharedInvocations != 3 || l.TotalInvocations != 4 {
		t.Errorf("shared=%d total=%d, want 3/4", l.SharedInvocations, l.TotalInvocations)
	}
	// The writer arrived while readers held the lock → contended.
	if l.TotalContended < 1 {
		t.Error("writer's contention not recorded")
	}
}
