// Package queue provides the lock-based FIFO task queues used by the
// workload models.
//
// Two implementations exist, mirroring the paper's Radiosity/TSP
// optimization case study (§V.D.3, §V.E):
//
//   - SingleLock: one mutex "<name>.qlock" protects both ends — the
//     structure the paper found dominating Radiosity's critical path;
//   - TwoLock: the two-lock concurrent queue of Michael & Scott, with
//     "<name>.q_head_lock" and "<name>.q_tail_lock", letting an
//     enqueuer and a dequeuer proceed in parallel — the paper's fix.
//
// Both are written against the harness API, so the same queue code
// runs on the simulator and the live backend. CS costs (the virtual
// time spent inside the critical section manipulating the structure)
// are configurable so workload models can match their application's
// critical-section sizes.
package queue

import (
	"sync/atomic"

	"critlock/internal/harness"
	"critlock/internal/trace"
)

// CostModel sets the in-critical-section work of queue operations.
type CostModel struct {
	// EnqueueCost is virtual time spent holding the lock per enqueue.
	EnqueueCost trace.Time
	// DequeueCost is virtual time spent holding the lock per
	// successful dequeue.
	DequeueCost trace.Time
	// MissCost is virtual time spent holding the lock when a dequeue
	// finds the queue empty (checking a count is much cheaper than
	// unlinking an element). Zero means misses cost DequeueCost.
	MissCost trace.Time
}

func (c CostModel) missCost() trace.Time {
	if c.MissCost > 0 {
		return c.MissCost
	}
	return c.DequeueCost
}

// TaskQueue is a FIFO of int64 payloads protected by harness locks.
// All methods must be called from a harness thread context.
type TaskQueue interface {
	// Enqueue appends v.
	Enqueue(p harness.Proc, v int64)
	// TryDequeue removes the oldest element, reporting false if the
	// queue was observed empty.
	TryDequeue(p harness.Proc) (int64, bool)
	// LockNames lists the mutex names guarding this queue.
	LockNames() []string
}

// NewSingleLock builds a coarse-grained queue guarded by one mutex
// named "<name>.qlock".
func NewSingleLock(rt harness.Runtime, name string, c CostModel) TaskQueue {
	return &singleLock{
		lock: rt.NewMutex(name + ".qlock"),
		cost: c,
	}
}

type singleLock struct {
	lock harness.Mutex
	cost CostModel
	// items is protected by lock.
	items []int64
	head  int
}

func (q *singleLock) Enqueue(p harness.Proc, v int64) {
	p.Lock(q.lock)
	p.Compute(q.cost.EnqueueCost)
	q.items = append(q.items, v)
	p.Unlock(q.lock)
}

func (q *singleLock) TryDequeue(p harness.Proc) (int64, bool) {
	p.Lock(q.lock)
	if q.head >= len(q.items) {
		p.Compute(q.cost.missCost())
		p.Unlock(q.lock)
		return 0, false
	}
	p.Compute(q.cost.DequeueCost)
	v := q.items[q.head]
	q.head++
	if q.head > 1024 && q.head*2 >= len(q.items) {
		// Compact the consumed prefix to bound memory.
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	p.Unlock(q.lock)
	return v, true
}

func (q *singleLock) LockNames() []string { return []string{q.lock.Name()} }

// NewTwoLock builds the Michael–Scott two-lock queue: a linked list
// with a dummy node, head and tail guarded by separate mutexes so
// enqueues and dequeues do not contend with each other.
func NewTwoLock(rt harness.Runtime, name string, c CostModel) TaskQueue {
	dummy := &node{}
	q := &twoLock{
		headLock: rt.NewMutex(name + ".q_head_lock"),
		tailLock: rt.NewMutex(name + ".q_tail_lock"),
		cost:     c,
	}
	q.head = dummy
	q.tail.Store(dummy)
	return q
}

type node struct {
	v    int64
	next atomic.Pointer[node]
}

type twoLock struct {
	headLock harness.Mutex
	tailLock harness.Mutex
	cost     CostModel
	// head is protected by headLock; tail by tailLock. next pointers
	// are atomic because the boundary node is visible to both sides
	// when the queue is empty (the Michael–Scott invariant).
	head *node
	tail atomic.Pointer[node]
}

func (q *twoLock) Enqueue(p harness.Proc, v int64) {
	n := &node{v: v}
	p.Lock(q.tailLock)
	p.Compute(q.cost.EnqueueCost)
	t := q.tail.Load()
	t.next.Store(n)
	q.tail.Store(n)
	p.Unlock(q.tailLock)
}

func (q *twoLock) TryDequeue(p harness.Proc) (int64, bool) {
	p.Lock(q.headLock)
	first := q.head.next.Load()
	if first == nil {
		p.Compute(q.cost.missCost())
		p.Unlock(q.headLock)
		return 0, false
	}
	p.Compute(q.cost.DequeueCost)
	v := first.v
	q.head = first
	p.Unlock(q.headLock)
	return v, true
}

func (q *twoLock) LockNames() []string {
	return []string{q.headLock.Name(), q.tailLock.Name()}
}
