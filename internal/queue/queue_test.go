package queue

import (
	"sort"
	"testing"
	"testing/quick"

	"critlock/internal/core"
	"critlock/internal/harness"
	"critlock/internal/livetrace"
	"critlock/internal/sim"
	"critlock/internal/trace"
)

type maker func(rt harness.Runtime, name string, c CostModel) TaskQueue

var makers = map[string]maker{
	"single": NewSingleLock,
	"twolock": func(rt harness.Runtime, name string, c CostModel) TaskQueue {
		return NewTwoLock(rt, name, c)
	},
}

// TestFIFOSequential: both queues preserve FIFO order under a single
// thread.
func TestFIFOSequential(t *testing.T) {
	for kind, mk := range makers {
		t.Run(kind, func(t *testing.T) {
			s := sim.New(sim.Config{})
			q := mk(s, "q", CostModel{})
			var got []int64
			_, _, err := s.Run(func(p harness.Proc) {
				for i := int64(0); i < 100; i++ {
					q.Enqueue(p, i)
				}
				for {
					v, ok := q.TryDequeue(p)
					if !ok {
						break
					}
					got = append(got, v)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 100 {
				t.Fatalf("dequeued %d, want 100", len(got))
			}
			for i, v := range got {
				if v != int64(i) {
					t.Fatalf("got[%d] = %d, want %d (FIFO violated)", i, v, i)
				}
			}
		})
	}
}

// TestPropertyInterleaved: arbitrary enqueue/dequeue interleavings on
// one thread behave exactly like a reference slice queue.
func TestPropertyInterleaved(t *testing.T) {
	for kind, mk := range makers {
		mk := mk
		t.Run(kind, func(t *testing.T) {
			f := func(ops []bool) bool {
				s := sim.New(sim.Config{})
				q := mk(s, "q", CostModel{})
				okAll := true
				_, _, err := s.Run(func(p harness.Proc) {
					var ref []int64
					next := int64(0)
					for _, enq := range ops {
						if enq {
							q.Enqueue(p, next)
							ref = append(ref, next)
							next++
						} else {
							v, ok := q.TryDequeue(p)
							wantOK := len(ref) > 0
							if ok != wantOK {
								okAll = false
								return
							}
							if ok {
								if v != ref[0] {
									okAll = false
									return
								}
								ref = ref[1:]
							}
						}
					}
				})
				return err == nil && okAll
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestConcurrentNoLossSim: N producers and M consumers on the
// simulator; every element is dequeued exactly once.
func TestConcurrentNoLossSim(t *testing.T) {
	for kind, mk := range makers {
		t.Run(kind, func(t *testing.T) {
			const producers, consumers, perProducer = 4, 4, 50
			s := sim.New(sim.Config{Contexts: 8, Seed: 1})
			q := mk(s, "q", CostModel{EnqueueCost: 3, DequeueCost: 2})
			results := make([][]int64, consumers)
			_, _, err := s.Run(func(p harness.Proc) {
				var kids []harness.Thread
				for i := 0; i < producers; i++ {
					base := int64(i * perProducer)
					kids = append(kids, p.Go("prod", func(pp harness.Proc) {
						for j := int64(0); j < perProducer; j++ {
							pp.Compute(trace.Time(pp.Rand().Intn(10)))
							q.Enqueue(pp, base+j)
						}
					}))
				}
				for _, k := range kids {
					p.Join(k)
				}
				var conKids []harness.Thread
				for c := 0; c < consumers; c++ {
					c := c
					conKids = append(conKids, p.Go("cons", func(pp harness.Proc) {
						for {
							v, ok := q.TryDequeue(pp)
							if !ok {
								return
							}
							results[c] = append(results[c], v)
							pp.Compute(trace.Time(pp.Rand().Intn(10)))
						}
					}))
				}
				for _, k := range conKids {
					p.Join(k)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			var all []int64
			for _, r := range results {
				all = append(all, r...)
			}
			if len(all) != producers*perProducer {
				t.Fatalf("dequeued %d, want %d", len(all), producers*perProducer)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			for i, v := range all {
				if v != int64(i) {
					t.Fatalf("element %d missing or duplicated (saw %d)", i, v)
				}
			}
		})
	}
}

// TestConcurrentLive runs producers/consumers on real goroutines under
// the race detector — this is what certifies the two-lock queue's
// atomic next pointers.
func TestConcurrentLive(t *testing.T) {
	for kind, mk := range makers {
		t.Run(kind, func(t *testing.T) {
			const producers, perProducer = 3, 100
			rt := livetrace.New(livetrace.Config{})
			q := mk(rt, "q", CostModel{})
			seen := make(map[int64]int)
			_, _, err := rt.Run(func(p harness.Proc) {
				var kids []harness.Thread
				for i := 0; i < producers; i++ {
					base := int64(i * perProducer)
					kids = append(kids, p.Go("prod", func(pp harness.Proc) {
						for j := int64(0); j < perProducer; j++ {
							q.Enqueue(pp, base+j)
						}
					}))
				}
				// Consume concurrently on the main thread; once the
				// queue looks empty, join the producers and do one
				// final drain.
				joined := false
				for {
					v, ok := q.TryDequeue(p)
					if ok {
						seen[v]++
						continue
					}
					if joined {
						break
					}
					for _, k := range kids {
						p.Join(k)
					}
					joined = true
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(seen) != producers*perProducer {
				t.Fatalf("saw %d unique elements, want %d", len(seen), producers*perProducer)
			}
			for v, n := range seen {
				if n != 1 {
					t.Fatalf("element %d dequeued %d times", v, n)
				}
			}
		})
	}
}

// TestTwoLockParallelism: with separated head/tail locks, an enqueuer
// and a dequeuer with large CS costs overlap; with a single lock they
// serialize. This is the mechanism behind the paper's Radiosity and
// TSP optimizations.
func TestTwoLockParallelism(t *testing.T) {
	const ops = 50
	const cost = 100
	run := func(mk maker) trace.Time {
		s := sim.New(sim.Config{Contexts: 4})
		q := mk(s, "q", CostModel{EnqueueCost: cost, DequeueCost: cost})
		_, elapsed, err := s.Run(func(p harness.Proc) {
			// Pre-fill so the dequeuer never sees empty.
			for i := 0; i < ops; i++ {
				q.Enqueue(p, int64(i))
			}
			enq := p.Go("enq", func(pp harness.Proc) {
				for i := 0; i < ops; i++ {
					q.Enqueue(pp, int64(i))
				}
			})
			deq := p.Go("deq", func(pp harness.Proc) {
				for i := 0; i < ops; i++ {
					q.TryDequeue(pp)
				}
			})
			p.Join(enq)
			p.Join(deq)
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	single := run(makers["single"])
	two := run(makers["twolock"])
	if two >= single {
		t.Errorf("two-lock (%d) not faster than single-lock (%d)", two, single)
	}
	// The parallel phase should be ~2x faster with two locks.
	if float64(single-trace.Time(ops*cost))/float64(two-trace.Time(ops*cost)) < 1.5 {
		t.Errorf("parallel-phase speedup too small: single=%d two=%d", single, two)
	}
}

// TestLockNamesFollowPaper: the lock names must match the paper's
// tables (qlock, q_head_lock, q_tail_lock).
func TestLockNamesFollowPaper(t *testing.T) {
	s := sim.New(sim.Config{})
	q1 := NewSingleLock(s, "tq[0]", CostModel{})
	q2 := NewTwoLock(s, "Q", CostModel{})
	if got := q1.LockNames(); len(got) != 1 || got[0] != "tq[0].qlock" {
		t.Errorf("single lock names = %v", got)
	}
	if got := q2.LockNames(); len(got) != 2 || got[0] != "Q.q_head_lock" || got[1] != "Q.q_tail_lock" {
		t.Errorf("two-lock names = %v", got)
	}
	// The registered mutexes must show up in traces under those names.
	tr, _, err := s.Run(func(p harness.Proc) {
		q1.Enqueue(p, 1)
		q2.Enqueue(p, 2)
		q2.TryDequeue(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tq[0].qlock", "Q.q_head_lock", "Q.q_tail_lock"} {
		if an.Lock(name) == nil {
			t.Errorf("lock %q missing from analysis", name)
		}
	}
}
