// Package experiments defines one runnable reproduction per table and
// figure of the paper's evaluation (§V). Each experiment runs its
// workloads on the deterministic simulator, analyzes the traces and
// renders the same rows/series the paper reports, annotated with the
// paper's reference values where the paper states them.
//
// Absolute numbers are not expected to match (the substrate is a
// simulator, not the authors' POWER7); the reproduced artifact is the
// shape — which lock wins, by roughly what factor, and where the
// crossovers fall. EXPERIMENTS.md records measured-vs-paper for every
// experiment.
package experiments

import (
	"fmt"
	"sort"

	"critlock/internal/core"
	"critlock/internal/report"
	"critlock/internal/sim"
	"critlock/internal/trace"
	"critlock/internal/workloads"
)

// Options tunes experiment execution.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// Contexts is the simulated hardware thread count (default 24,
	// the paper's machine).
	Contexts int
	// Quick shrinks sweeps (used by tests); results keep their shape.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Contexts == 0 {
		o.Contexts = 24
	}
	return o
}

// Result is a rendered experiment.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
	// Notes carry measured-vs-paper commentary and free-form output
	// (e.g. the Gantt charts).
	Notes []string
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Paper cites the artifact being reproduced.
	Paper string
	Run   func(Options) (*Result, error)
}

var all []Experiment

// paperOrder fixes the presentation order of experiments regardless of
// file-init order.
var paperOrder = []string{
	"table1", "table2", "fig1", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "tsp",
	"ablation-fairness", "ablation-clipping",
	"extension-phases", "extension-oversub", "extension-sensitivity", "extension-online", "extension-slack", "extension-extract",
}

func register(e Experiment) { all = append(all, e) }

// All lists experiments in paper order; experiments not in paperOrder
// (if any are added later) come last, alphabetically.
func All() []Experiment {
	rank := func(id string) int {
		for i, p := range paperOrder {
			if p == id {
				return i
			}
		}
		return len(paperOrder)
	}
	out := append([]Experiment(nil), all...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := rank(out[i].ID), rank(out[j].ID)
		if ri != rj {
			return ri < rj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Get finds an experiment by ID.
func Get(id string) (Experiment, error) {
	for _, e := range all {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(all))
	for _, e := range all {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// runWorkload executes one workload on a fresh simulator and analyzes
// the trace.
func runWorkload(name string, p workloads.Params, o Options) (*core.Analysis, trace.Time, error) {
	spec, err := workloads.Get(name)
	if err != nil {
		return nil, 0, err
	}
	if p.Seed == 0 {
		p.Seed = o.Seed
	}
	s := sim.New(sim.Config{Contexts: o.Contexts, Seed: p.Seed})
	tr, elapsed, err := workloads.Run(s, spec, p)
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: running %s: %w", name, err)
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: analyzing %s: %w", name, err)
	}
	return an, elapsed, nil
}

// runBuilt runs an explicitly-built workload (e.g. a shrunken micro
// variant) and returns analysis plus elapsed virtual time.
func runBuilt(build workloads.BuildFunc, p workloads.Params, o Options, meta string) (*core.Analysis, trace.Time, error) {
	if p.Seed == 0 {
		p.Seed = o.Seed
	}
	if p.Scale <= 0 {
		p.Scale = 1
	}
	s := sim.New(sim.Config{Contexts: o.Contexts, Seed: p.Seed})
	s.SetMeta("workload", meta)
	tr, elapsed, err := s.Run(build(s, p))
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: running %s: %w", meta, err)
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		return nil, 0, err
	}
	return an, elapsed, nil
}

func notef(r *Result, format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}
