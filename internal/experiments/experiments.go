// Package experiments defines one runnable reproduction per table and
// figure of the paper's evaluation (§V). Each experiment runs its
// workloads on the deterministic simulator, analyzes the traces and
// renders the same rows/series the paper reports, annotated with the
// paper's reference values where the paper states them.
//
// Absolute numbers are not expected to match (the substrate is a
// simulator, not the authors' POWER7); the reproduced artifact is the
// shape — which lock wins, by roughly what factor, and where the
// crossovers fall. EXPERIMENTS.md records measured-vs-paper for every
// experiment.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"critlock/internal/core"
	"critlock/internal/report"
	"critlock/internal/sim"
	"critlock/internal/trace"
	"critlock/internal/workloads"
)

// Options tunes experiment execution.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// Contexts is the simulated hardware thread count (default 24,
	// the paper's machine).
	Contexts int
	// Quick shrinks sweeps (used by tests); results keep their shape.
	Quick bool
	// Parallelism bounds the worker count for sweeps inside one
	// experiment (fig9/fig12 thread scans and the like). 0 or 1 runs
	// serially; results are identical either way.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Contexts == 0 {
		o.Contexts = 24
	}
	if o.Parallelism == 0 {
		o.Parallelism = 1
	}
	return o
}

// Result is a rendered experiment.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
	// Notes carry measured-vs-paper commentary and free-form output
	// (e.g. the Gantt charts).
	Notes []string
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Paper cites the artifact being reproduced.
	Paper string
	Run   func(Options) (*Result, error)
}

var all []Experiment

// paperOrder fixes the presentation order of experiments regardless of
// file-init order.
var paperOrder = []string{
	"table1", "table2", "fig1", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "tsp",
	"ablation-fairness", "ablation-clipping",
	"extension-phases", "extension-oversub", "extension-sensitivity", "extension-online", "extension-slack", "extension-extract",
	"extension-channels", "extension-hazards",
}

func register(e Experiment) { all = append(all, e) }

// All lists experiments in paper order; experiments not in paperOrder
// (if any are added later) come last, alphabetically.
func All() []Experiment {
	rank := func(id string) int {
		for i, p := range paperOrder {
			if p == id {
				return i
			}
		}
		return len(paperOrder)
	}
	out := append([]Experiment(nil), all...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := rank(out[i].ID), rank(out[j].ID)
		if ri != rj {
			return ri < rj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// byID is the lazily built ID → experiment lookup map. Registration
// happens in package init functions, so building on first use (always
// after init) sees the complete registry.
var (
	byIDOnce sync.Once
	byIDMap  map[string]Experiment
)

// ByID finds an experiment by ID in O(1). Unknown IDs get a "did you
// mean" suggestion when a registered ID is close (edit distance), or
// the full sorted ID list otherwise.
func ByID(id string) (Experiment, error) {
	byIDOnce.Do(func() {
		byIDMap = make(map[string]Experiment, len(all))
		for _, e := range all {
			byIDMap[e.ID] = e
		}
	})
	if e, ok := byIDMap[id]; ok {
		return e, nil
	}
	if s := closestID(id); s != "" {
		return Experiment{}, fmt.Errorf("experiments: unknown id %q, did you mean %q? (use -list for all)", id, s)
	}
	ids := make([]string, 0, len(all))
	for _, e := range all {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// Get finds an experiment by ID.
//
// Deprecated: use ByID; Get is kept as an alias for older callers.
func Get(id string) (Experiment, error) { return ByID(id) }

// closestID returns the registered ID nearest to id by edit distance,
// or "" when nothing is plausibly close. Distance ties go to the
// candidate sharing the longest prefix with the typo (then the
// lexicographically smaller one, for determinism).
func closestID(id string) string {
	best, bestDist, bestPfx := "", len(id)/2+2, -1
	for _, e := range all {
		d := editDistance(id, e.ID)
		if d > bestDist {
			continue
		}
		pfx := commonPrefixLen(id, e.ID)
		if d < bestDist || pfx > bestPfx || (pfx == bestPfx && best != "" && e.ID < best) {
			best, bestDist, bestPfx = e.ID, d, pfx
		}
	}
	return best
}

func commonPrefixLen(a, b string) int {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return i
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// runWorkload executes one workload on a fresh simulator and analyzes
// the trace.
func runWorkload(name string, p workloads.Params, o Options) (*core.Analysis, trace.Time, error) {
	spec, err := workloads.Get(name)
	if err != nil {
		return nil, 0, err
	}
	if p.Seed == 0 {
		p.Seed = o.Seed
	}
	s := sim.New(sim.Config{Contexts: o.Contexts, Seed: p.Seed})
	tr, elapsed, err := workloads.Run(s, spec, p)
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: running %s: %w", name, err)
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: analyzing %s: %w", name, err)
	}
	return an, elapsed, nil
}

// runBuilt runs an explicitly-built workload (e.g. a shrunken micro
// variant) and returns analysis plus elapsed virtual time.
func runBuilt(build workloads.BuildFunc, p workloads.Params, o Options, meta string) (*core.Analysis, trace.Time, error) {
	if p.Seed == 0 {
		p.Seed = o.Seed
	}
	if p.Scale <= 0 {
		p.Scale = 1
	}
	s := sim.New(sim.Config{Contexts: o.Contexts, Seed: p.Seed})
	s.SetMeta("workload", meta)
	tr, elapsed, err := s.Run(build(s, p))
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: running %s: %w", meta, err)
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		return nil, 0, err
	}
	return an, elapsed, nil
}

func notef(r *Result, format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}
