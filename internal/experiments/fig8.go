package experiments

import (
	"critlock/internal/report"
	"critlock/internal/workloads"
)

// fig8 compares CP Time against Wait Time for the two most critical
// locks of every application — the paper's cross-application survey.
func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Two most critical locks per application: CP Time vs Wait Time (paper Fig. 8)",
		Paper: "Fig. 8 and §V.C",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			apps := []struct {
				name    string
				threads int
				note    string
			}{
				{"radiosity", 24, "paper: Wait Time significantly underestimates tq[0].qlock"},
				{"waternsq", 24, "paper: tiny scattered critical sections"},
				{"volrend", 24, "paper: modest self-scheduling lock"},
				{"raytrace", 24, "paper: Wait Time significantly underestimates mem"},
				{"tsp", 24, "paper: Qlock ≈ 68% of the critical path"},
				{"uts", 24, "paper: stackLock[5] ≈ 5% CP at negligible wait"},
				{"ldap", 16, "paper: no significant critical-section bottleneck"},
			}
			if o.Quick {
				apps = apps[:0:0]
				apps = append(apps, struct {
					name    string
					threads int
					note    string
				}{"tsp", 8, "quick mode"})
			}
			r := &Result{ID: "fig8", Title: "Per-application lock survey"}
			t := report.NewTable("",
				"Application", "Lock", "CP Time %", "Wait Time %", "Cont. Prob. on CP %", "Critical")
			for _, app := range apps {
				an, _, err := runWorkload(app.name, workloads.Params{Threads: app.threads}, o)
				if err != nil {
					return nil, err
				}
				for _, l := range an.TopLocks(2) {
					crit := "no"
					if l.Critical {
						crit = "yes"
					}
					t.AddRow(app.name, l.Name, report.Pct(l.CPTimePct), report.Pct(l.WaitTimePct),
						report.Pct(l.ContProbOnCP), crit)
				}
				notef(r, "%s: %s", app.name, app.note)
			}
			r.Tables = append(r.Tables, t)
			return r, nil
		},
	})
}
