package experiments

import (
	"fmt"
	"strings"

	"critlock/internal/core"
	"critlock/internal/hazard"
	"critlock/internal/report"
	"critlock/internal/sim"
	"critlock/internal/synth"
	"critlock/internal/trace"
	"critlock/internal/workloads"
)

// extension-phases: criticality over time. The paper's future work
// proposes feeding critical-lock knowledge to runtime mechanisms
// (accelerated critical sections, speculative lock reordering,
// transactional memory); that requires knowing which lock is critical
// *when*, not just on average. This experiment windows the radiosity
// run and shows the critical lock changing across phases.
func init() {
	register(Experiment{
		ID:    "extension-phases",
		Title: "Extension: lock criticality over time windows (paper §VII future work)",
		Paper: "motivated by §VII (runtime guidance for ACS/SLR/TM)",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			threads := 24
			if o.Quick {
				threads = 8
			}
			an, _, err := runWorkload("radiosity", workloads.Params{Threads: threads}, o)
			if err != nil {
				return nil, err
			}
			r := &Result{ID: "extension-phases", Title: fmt.Sprintf("Radiosity at %d threads, 8 windows", threads)}
			r.Tables = append(r.Tables, report.WindowReport(an, 8))
			r.Tables = append(r.Tables, report.CompositionReport(an))
			wins := an.Windows(8)
			tops := map[string]int{}
			for _, w := range wins {
				tops[w.Top().Name]++
			}
			notef(r, "Distinct dominant locks across windows: %d — a runtime mechanism prioritizing 'the' critical lock must adapt per phase.", len(tops))
			return r, nil
		},
	})
}

// extension-oversub: the paper's machine offers 24 hardware threads;
// this experiment oversubscribes the simulated contexts (more threads
// than contexts) and checks that the critical-lock diagnosis stays
// stable while completion time degrades gracefully.
func init() {
	register(Experiment{
		ID:    "extension-oversub",
		Title: "Extension: oversubscription (threads > hardware contexts)",
		Paper: "substrate capability beyond the paper's configuration",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			spec, err := workloads.Get("radiosity")
			if err != nil {
				return nil, err
			}
			threadCounts := []int{24, 32, 48}
			if o.Quick {
				threadCounts = []int{8, 16}
			}
			r := &Result{ID: "extension-oversub", Title: fmt.Sprintf("Radiosity on %d contexts", o.Contexts)}
			t := report.NewTable("", "Threads", "Contexts", "Completion ns", "Top lock", "CP Time %")
			for _, n := range threadCounts {
				s := sim.New(sim.Config{Contexts: o.Contexts, Seed: o.Seed})
				tr, elapsed, err := workloads.Run(s, spec, workloads.Params{Threads: n, Seed: o.Seed})
				if err != nil {
					return nil, err
				}
				an, err := core.AnalyzeDefault(tr)
				if err != nil {
					return nil, err
				}
				top := an.Locks[0]
				t.AddRow(fmt.Sprint(n), fmt.Sprint(o.Contexts), fmt.Sprint(elapsed), top.Name, report.Pct(top.CPTimePct))
			}
			r.Tables = append(r.Tables, t)
			notef(r, "Surplus runnable threads queue for contexts (FIFO); the identified critical lock is stable under oversubscription.")
			return r, nil
		},
	})
}

// extension-sensitivity: lock handoff overhead. The paper's POWER7
// numbers include cache-line migration costs our idealized simulator
// omits (e.g. the micro-benchmark's Wait Time of 36.5% vs the model's
// 24%). This experiment adds per-entry lock overhead and a contention
// penalty and shows Wait Time rising toward the measured hardware
// value while the identification result is unchanged.
func init() {
	register(Experiment{
		ID:    "extension-sensitivity",
		Title: "Extension: sensitivity to lock handoff costs (why paper Wait Times run higher)",
		Paper: "explains fig6's Wait Time gap (36.53% on POWER7 vs idealized model)",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			r := &Result{ID: "extension-sensitivity", Title: "Micro-benchmark under lock handoff costs"}
			t := report.NewTable("", "Overhead/Penalty ns", "L1 Wait Time %", "L2 Wait Time %", "L1 CP Time %", "L2 CP Time %", "Top by CP")
			for _, oh := range []int64{0, 2_000, 10_000, 50_000} {
				s := sim.New(sim.Config{
					Contexts:          o.Contexts,
					Seed:              o.Seed,
					LockOverhead:      trace.Time(oh),
					ContentionPenalty: trace.Time(oh * 3),
				})
				spec, err := workloads.Get("micro")
				if err != nil {
					return nil, err
				}
				tr, _, err := workloads.Run(s, spec, workloads.Params{Threads: 4, Seed: o.Seed})
				if err != nil {
					return nil, err
				}
				an, err := core.AnalyzeDefault(tr)
				if err != nil {
					return nil, err
				}
				l1, l2 := an.Lock("L1"), an.Lock("L2")
				t.AddRow(fmt.Sprintf("%d/%d", oh, oh*3),
					report.Pct(l1.WaitTimePct), report.Pct(l2.WaitTimePct),
					report.Pct(l1.CPTimePct), report.Pct(l2.CPTimePct),
					an.Locks[0].Name)
			}
			r.Tables = append(r.Tables, t)
			notef(r, "Identification is robust: even 200µs of combined handoff cost per contended entry leaves L2 the critical lock. "+
				"Handoff costs alone move Wait Time only slightly against these millisecond-scale critical sections — the paper's higher "+
				"L1 Wait Time (36.53%% vs the model's ~24%%) also reflects spin-waiting cache traffic that scales with the number of waiters, "+
				"which a trace-level model deliberately does not charge to any thread.")
			return r, nil
		},
	})
}

// extension-channels: channels as first-class synchronization. The
// paper's dependency model stops at locks, barriers and condition
// variables; this experiment applies the same Fig. 2 backward walk to
// channel handoffs. The pipeline workload is the channel analogue of a
// critical lock (one hot stage channel absorbs essentially all blocked
// time while an amply-buffered results channel stays cold); fanin
// shows blocked time dispersing across per-producer channels behind a
// select-driven aggregator.
func init() {
	register(Experiment{
		ID:    "extension-channels",
		Title: "Extension: channel handoffs on the critical path (pipeline vs fan-in)",
		Paper: "extension beyond §III's lock/barrier/condvar dependency model",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			threads := 8
			if o.Quick {
				threads = 4
			}
			r := &Result{ID: "extension-channels", Title: fmt.Sprintf("Channel workloads at %d threads", threads)}
			t := report.NewTable("", "Workload", "Hot chan", "Hot share %", "Chan jumps on CP", "Chan wait on CP ns", "Total chan wait ns")
			for _, name := range []string{"pipeline", "fanin"} {
				an, _, err := runWorkload(name, workloads.Params{Threads: threads}, o)
				if err != nil {
					return nil, err
				}
				hot := an.Chans[0]
				share := 0.0
				if an.Totals.TotalChanWait > 0 {
					share = 100 * float64(hot.TotalWait) / float64(an.Totals.TotalChanWait)
				}
				var cpJumps int
				var cpWait trace.Time
				for _, c := range an.Chans {
					cpJumps += c.JumpsOnCP
					cpWait += c.WaitOnCP
				}
				t.AddRow(name, hot.Name, report.Pct(share),
					fmt.Sprint(cpJumps), fmt.Sprint(cpWait), fmt.Sprint(an.Totals.TotalChanWait))
				r.Tables = append(r.Tables, report.ChanReport(an, 0))
			}
			r.Tables = append([]*report.Table{t}, r.Tables...)
			notef(r, "Pipeline concentrates blocked time on one stage channel (the channel analogue of a critical lock); "+
				"fan-in spreads it across the producers' channels, and the critical path hops through whichever send the select admits.")
			return r, nil
		},
	})
}

// extension-hazards: dynamic hazard prediction. The paper's dependency
// graph (§III) diagnoses where blocked time goes; the same trace, read
// for structure instead of weight, predicts what can go wrong —
// feasible deadlock cycles (including cross-thread ones that
// per-thread lock-set analysis cannot see, because a critical section
// extended across a channel handoff) and lost signals. The planted
// workloads must light up; the clean controls must stay dark.
func init() {
	register(Experiment{
		ID:    "extension-hazards",
		Title: "Extension: dynamic hazard prediction (feasible deadlocks, lost signals)",
		Paper: "extension beyond §III: hazard structure from the same dependency trace",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			r := &Result{ID: "extension-hazards", Title: "Planted hazards vs clean controls"}
			t := report.NewTable("", "Workload", "Cycles", "Cross-thread", "Lost signals", "Guard issues", "Detail")
			cases := []struct {
				name   string
				params workloads.Params
				label  string
			}{
				{"deadlockprone", workloads.Params{}, "deadlockprone"},
				{"deadlockprone", workloads.Params{TwoLock: true}, "deadlockprone (twolock)"},
				{"lostsignal", workloads.Params{}, "lostsignal"},
				{"micro", workloads.Params{Threads: 4}, "micro (clean control)"},
				{"pipeline", workloads.Params{Threads: 4}, "pipeline (clean control)"},
			}
			var planted int
			for _, c := range cases {
				spec, err := workloads.Get(c.name)
				if err != nil {
					return nil, err
				}
				p := c.params
				p.Seed = o.Seed
				s := sim.New(sim.Config{Contexts: o.Contexts, Seed: o.Seed})
				tr, _, err := workloads.Run(s, spec, p)
				if err != nil {
					return nil, err
				}
				hz, err := hazard.FromTrace(tr)
				if err != nil {
					return nil, err
				}
				cross := false
				for _, cy := range hz.Cycles {
					cross = cross || cy.CrossThread
				}
				detail := "clean"
				switch {
				case len(hz.Cycles) > 0:
					detail = strings.Join(hz.Cycles[0].Locks, " <-> ")
				case len(hz.LostSignals) > 0:
					ls := hz.LostSignals[0]
					detail = fmt.Sprintf("lost %s on %s", ls.Kind, ls.Object)
				}
				planted += hz.Total()
				t.AddRow(c.label, fmt.Sprint(len(hz.Cycles)), fmt.Sprint(cross),
					fmt.Sprint(len(hz.LostSignals)), fmt.Sprint(len(hz.GuardIssues)), detail)
			}
			r.Tables = append(r.Tables, t)
			notef(r, "Every planted hazard is predicted from an ordinary (non-deadlocking) run — %d findings across the seeded workloads, zero on the clean controls. "+
				"The default deadlockprone cycle is cross-thread: lock A is held across a channel handoff into the goroutine that takes B then A, so no single thread ever nests A and B.", planted)
			return r, nil
		},
	})
}

// extension-extract: the model-extraction loop. Pull a declarative
// model out of an analyzed radiosity trace and re-simulate it: the
// statistical caricature must preserve the diagnosis (the extracted
// model's critical lock matches the original's).
func init() {
	register(Experiment{
		ID:    "extension-extract",
		Title: "Extension: model extraction round-trip (trace → synth DSL → re-simulation)",
		Paper: "tooling around the paper's diagnose-then-optimize workflow",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			threads := 24
			if o.Quick {
				threads = 8
			}
			an, elapsed, err := runWorkload("radiosity", workloads.Params{Threads: threads}, o)
			if err != nil {
				return nil, err
			}
			cfg, err := synth.FromAnalysis(an)
			if err != nil {
				return nil, err
			}
			s := sim.New(sim.Config{Contexts: o.Contexts, Seed: o.Seed + 1})
			tr2, elapsed2, err := workloads.Run(s, cfg.Spec(), workloads.Params{Seed: o.Seed + 1})
			if err != nil {
				return nil, err
			}
			an2, err := core.AnalyzeDefault(tr2)
			if err != nil {
				return nil, err
			}
			r := &Result{ID: "extension-extract", Title: fmt.Sprintf("Radiosity at %d threads → extracted model", threads)}
			t := report.NewTable("", "Run", "Completion ns", "Top lock", "CP Time %")
			t.AddRow("original", fmt.Sprint(elapsed), an.Locks[0].Name, report.Pct(an.Locks[0].CPTimePct))
			t.AddRow("extracted model", fmt.Sprint(elapsed2), an2.Locks[0].Name, report.Pct(an2.Locks[0].CPTimePct))
			r.Tables = append(r.Tables, t)
			notef(r, "Diagnosis preserved: %v. The model is a statistical caricature (rates and sizes, not dependency structure), which suffices for what-if iteration with clawhatif.",
				an.Locks[0].Name == an2.Locks[0].Name)
			return r, nil
		},
	})
}
