package experiments

import (
	"critlock/internal/core"
	"critlock/internal/report"
	"critlock/internal/workloads"
)

// extension-slack: the walk yields one critical path; slack analysis
// (a PERT late-time pass over the same event graph) additionally
// quantifies how far every other lock is from that path. On the
// paper's own Fig. 1 example it answers the question the binary
// critical/normal distinction leaves open: L4 is not just "off the
// path" — it has exactly 3 time units of slack, so growing its
// critical section by more than 3 units WOULD make it critical. It
// also reports, for a real workload, how many locks sit off the path
// and how much room they have.
func init() {
	register(Experiment{
		ID:    "extension-slack",
		Title: "Extension: slack — how far every lock is from the critical path",
		Paper: "companion to §II/Fig. 1 (quantifying 'overlapped by the critical path')",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			r := &Result{ID: "extension-slack", Title: "Slack analysis"}

			// Fig. 1: the paper's illustrative execution.
			anFig1, err := core.AnalyzeDefault(Fig1Trace())
			if err != nil {
				return nil, err
			}
			saFig1 := anFig1.Slack()
			t := report.SlackReport(saFig1, 0)
			t.Title = "Fig. 1 execution (1 unit = 1000 ns)"
			r.Tables = append(r.Tables, t)
			var l4 core.LockSlack
			for _, l := range saFig1.Locks {
				if l.Name == "L4" {
					l4 = l
				}
			}
			notef(r, "L4 — the lock idleness-based tools would flag — has %d ns of slack: its critical section could grow by %d units before it delays completion at all.",
				l4.MinSlack, l4.MinSlack/1000)

			// A real workload: distribution of off-path locks.
			threads := 24
			if o.Quick {
				threads = 8
			}
			an, _, err := runWorkload("waternsq", workloads.Params{Threads: threads}, o)
			if err != nil {
				return nil, err
			}
			sa := an.Slack()
			on, off := 0, 0
			var minOff core.LockSlack
			for _, l := range sa.Locks {
				if l.OnCP {
					on++
					continue
				}
				off++
				if minOff.Name == "" || l.MinSlack < minOff.MinSlack {
					minOff = l
				}
			}
			notef(r, "waternsq at %d threads: %d locks touch the critical path, %d never do; the nearest off-path lock is %s at %d ns slack (path length %d ns).",
				threads, on, off, minOff.Name, minOff.MinSlack, an.CP.Length)
			notef(r, "Consistency check: every lock the walk marks critical has zero slack, and vice versa: %v",
				slackConsistent(sa))
			return r, nil
		},
	})
}

// slackConsistent verifies the cross-validation property between the
// backward walk (one path) and the PERT pass (all paths): a lock is on
// the walked path only if its slack is zero.
func slackConsistent(sa *core.SlackAnalysis) bool {
	for _, l := range sa.Locks {
		if l.OnCP && l.MinSlack != 0 {
			return false
		}
	}
	return true
}
