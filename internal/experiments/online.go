package experiments

import (
	"critlock/internal/core"
	"critlock/internal/report"
	"critlock/internal/workloads"
)

// extension-online: evaluate the online criticality predictor (the
// §VII future-work building block) against the full critical-path
// analysis. For every workload, compare the lock the predictor ranks
// first — computable at run time from a forward event stream — with
// the ground-truth critical lock, and with the naive wait-time ranking
// that prior tools would use online.
func init() {
	register(Experiment{
		ID:    "extension-online",
		Title: "Extension: online criticality prediction vs ground truth (paper §VII)",
		Paper: "motivated by §VII: 'if one knows which locks are most critical at run time'",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			apps := []struct {
				name    string
				threads int
			}{
				{"micro", 4},
				{"radiosity", 24},
				{"raytrace", 24},
				{"tsp", 24},
				{"uts", 24},
				{"volrend", 24},
				{"waternsq", 24},
			}
			if o.Quick {
				apps = apps[:3]
			}
			r := &Result{ID: "extension-online", Title: "Online predictor evaluation"}
			t := report.NewTable("",
				"Workload", "Ground truth (CP walk)", "Predictor (online)", "Wait-based (online)",
				"Predictor correct", "Wait-based correct")
			predictorHits, waitHits := 0, 0
			for _, app := range apps {
				an, _, err := runWorkload(app.name, workloads.Params{Threads: app.threads}, o)
				if err != nil {
					return nil, err
				}
				truth := an.Locks[0].Name

				p := core.NewPredictor()
				p.ObserveAll(an.Trace)
				pred := an.Trace.ObjName(p.Top())
				waitTop := "<none>"
				if wr := p.WaitRanking(); len(wr) > 0 {
					waitTop = an.Trace.ObjName(wr[0].Lock)
				}
				pOK, wOK := pred == truth, waitTop == truth
				if pOK {
					predictorHits++
				}
				if wOK {
					waitHits++
				}
				t.AddRow(app.name, truth, pred, waitTop, boolMark(pOK), boolMark(wOK))
			}
			r.Tables = append(r.Tables, t)
			notef(r, "Predictor top-1 agreement: %d/%d; wait-time baseline: %d/%d. The predictor needs only a forward event stream and O(locks) state — deployable inside a runtime, unlike the offline backward walk.",
				predictorHits, len(apps), waitHits, len(apps))
			return r, nil
		},
	})
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
