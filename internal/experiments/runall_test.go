package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// renderOutcomes flattens outcomes to the bytes claexp would print —
// the determinism yardstick.
func renderOutcomes(t *testing.T, outcomes []RunOutcome) string {
	t.Helper()
	var buf bytes.Buffer
	for _, oc := range outcomes {
		if oc.Err != nil {
			t.Fatalf("%s: %v", oc.Experiment.ID, oc.Err)
		}
		buf.WriteString(oc.Experiment.ID)
		buf.WriteByte('\n')
		for _, tab := range oc.Result.Tables {
			if err := tab.Render(&buf); err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range oc.Result.Notes {
			buf.WriteString(n)
			buf.WriteByte('\n')
		}
	}
	return buf.String()
}

// TestRunSetParallelDeterministic: the rendered output of a set of
// experiments must be byte-identical for any worker count, and
// outcomes must come back in input order. Run with -race this also
// shakes out data races between concurrently running experiments and
// the parallel sweeps inside them.
func TestRunSetParallelDeterministic(t *testing.T) {
	exps := make([]Experiment, 0, 6)
	for _, id := range []string{"table2", "fig1", "fig6", "fig9", "fig12", "ablation-clipping"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	serialOpts := quick()
	serial := renderOutcomes(t, RunSet(exps, serialOpts, 1))

	for _, j := range []int{2, 4, 8} {
		opts := quick()
		opts.Parallelism = j
		outcomes := RunSet(exps, opts, j)
		for i, oc := range outcomes {
			if oc.Experiment.ID != exps[i].ID {
				t.Fatalf("j=%d: outcome %d is %s, want %s (order must be input order)",
					j, i, oc.Experiment.ID, exps[i].ID)
			}
		}
		if got := renderOutcomes(t, outcomes); got != serial {
			t.Errorf("j=%d: output differs from serial run", j)
		}
	}
}

// TestRunSetPanicIsolated: a panicking experiment becomes an error
// outcome without poisoning its siblings.
func TestRunSetPanicIsolated(t *testing.T) {
	boom := Experiment{ID: "boom", Title: "panics", Paper: "-",
		Run: func(Options) (*Result, error) { panic("kaboom") }}
	ok, err := ByID("fig1")
	if err != nil {
		t.Fatal(err)
	}
	outcomes := RunSet([]Experiment{boom, ok}, quick(), 2)
	if outcomes[0].Err == nil || !strings.Contains(outcomes[0].Err.Error(), "kaboom") {
		t.Errorf("panic outcome = %v", outcomes[0].Err)
	}
	if outcomes[1].Err != nil {
		t.Errorf("sibling failed: %v", outcomes[1].Err)
	}
	if err := FirstError(outcomes); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("FirstError = %v", err)
	}
}

// TestByIDSuggestion: near-miss IDs get a useful suggestion.
func TestByIDSuggestion(t *testing.T) {
	if _, err := ByID("fig9"); err != nil {
		t.Fatal(err)
	}
	_, err := ByID("fig91")
	if err == nil || !strings.Contains(err.Error(), `did you mean "fig9"`) {
		t.Errorf("ByID(fig91) error = %v, want fig9 suggestion", err)
	}
	_, err = ByID("tabel2")
	if err == nil || !strings.Contains(err.Error(), `did you mean "table2"`) {
		t.Errorf("ByID(tabel2) error = %v, want table2 suggestion", err)
	}
	_, err = ByID("zzzzzzzzzzzzzzz")
	if err == nil || !strings.Contains(err.Error(), "have [") {
		t.Errorf("ByID(garbage) error = %v, want full id list", err)
	}
}
