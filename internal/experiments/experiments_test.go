package experiments

import (
	"strings"
	"testing"

	"critlock/internal/core"
)

// quick returns CI-sized options.
func quick() Options { return Options{Seed: 1, Contexts: 24, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "fig1", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "tsp",
		"ablation-fairness", "ablation-clipping",
		"extension-phases", "extension-oversub", "extension-sensitivity", "extension-online", "extension-slack", "extension-extract",
		"extension-channels", "extension-hazards",
	}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("have %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s (paper order)", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := Get("fig9"); err != nil {
		t.Error(err)
	}
	if _, err := Get("bogus"); err == nil {
		t.Error("Get(bogus) succeeded")
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode:
// each must succeed and produce at least one table or note.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(quick())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.ID != e.ID {
				t.Errorf("result id %q != %q", res.ID, e.ID)
			}
			if len(res.Tables) == 0 && len(res.Notes) == 0 {
				t.Error("experiment produced no output")
			}
			for _, tab := range res.Tables {
				if len(tab.Rows) == 0 {
					t.Error("empty table")
				}
			}
		})
	}
}

// TestFig1TraceGolden re-checks the reference trace the fig1
// experiment is built on (the same invariants as the core golden
// test, through the experiments path).
func TestFig1TraceGolden(t *testing.T) {
	an, err := core.AnalyzeDefault(Fig1Trace())
	if err != nil {
		t.Fatal(err)
	}
	if an.CP.Length != 33_000 {
		t.Errorf("CP length = %d, want 33000 (33 units × 1µs)", an.CP.Length)
	}
	l2 := an.Lock("L2")
	if l2.InvocationsOnCP != 4 || l2.ContendedOnCP != 3 {
		t.Errorf("L2 on CP: %d invocations / %d contended, want 4/3", l2.InvocationsOnCP, l2.ContendedOnCP)
	}
	if an.Lock("L4").Critical {
		t.Error("L4 must be off the critical path")
	}
}

// TestFig6ShapeHolds: the identification result must hold (not just
// run) — CP Time picks L2, Wait Time picks L1, optimizing L2 wins.
func TestFig6ShapeHolds(t *testing.T) {
	e, err := Get("fig6")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Notes, "\n")
	if !strings.Contains(joined, "optimizing L2 wins): true") {
		t.Errorf("fig6 shape check failed:\n%s", joined)
	}
}

// TestDefaults: zero options get paper defaults.
func TestDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Seed != 1 || o.Contexts != 24 {
		t.Errorf("defaults = %+v", o)
	}
}
