package experiments

import (
	"fmt"

	"critlock/internal/core"
	"critlock/internal/report"
	"critlock/internal/sim"
	"critlock/internal/trace"
	"critlock/internal/workloads"
)

// ablation-fairness: the simulator's mutex wakeup policy (FIFO vs
// LIFO vs random) is a modelling choice; this experiment shows the
// analysis results are robust to it — completion time and the top
// lock's CP share move only marginally.
func init() {
	register(Experiment{
		ID:    "ablation-fairness",
		Title: "Ablation: mutex wakeup policy (DESIGN.md §6)",
		Paper: "design choice, not a paper artifact",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			threads := 16
			if o.Quick {
				threads = 8
			}
			spec, err := workloads.Get("radiosity")
			if err != nil {
				return nil, err
			}
			r := &Result{ID: "ablation-fairness", Title: "Wakeup-policy ablation (radiosity)"}
			t := report.NewTable("", "Policy", "Completion ns", "Top lock", "CP Time %", "Cont. Prob. on CP %")
			for _, pol := range []sim.WakePolicy{sim.WakeFIFO, sim.WakeLIFO, sim.WakeRandom} {
				s := sim.New(sim.Config{Contexts: o.Contexts, Seed: o.Seed, WakePolicy: pol})
				tr, elapsed, err := workloads.Run(s, spec, workloads.Params{Threads: threads, Seed: o.Seed})
				if err != nil {
					return nil, fmt.Errorf("policy %v: %w", pol, err)
				}
				an, err := core.AnalyzeDefault(tr)
				if err != nil {
					return nil, err
				}
				top := an.Locks[0]
				t.AddRow(pol.String(), fmt.Sprint(elapsed), top.Name, report.Pct(top.CPTimePct), report.Pct(top.ContProbOnCP))
			}
			r.Tables = append(r.Tables, t)
			notef(r, "The identified critical lock is stable across wakeup policies; FIFO is the default because the analyzer's waker resolution is exact under it.")
			return r, nil
		},
	})
}

// nestedHoldTrace builds a two-thread execution where thread A blocks
// on an inner lock while holding an outer one, so only part of the
// outer hold lies on the walked path.
func nestedHoldTrace() *trace.Trace {
	b := trace.NewBuilder()
	a := b.Thread("A", trace.NoThread)
	c := b.Thread("B", a)
	outer := b.Mutex("outer")
	inner := b.Mutex("inner")
	b.Start(0, a)
	b.Start(0, c)
	// B holds inner 0..60; A takes outer at 10, blocks on inner at 20,
	// gets it at 60, releases everything by 100 and is the last to
	// exit. The walk jumps from A's inner obtain into B, so A's outer
	// hold [10,100] is only partially walked.
	b.Event(0, c, trace.EvLockAcquire, inner, 0)
	b.Event(0, c, trace.EvLockObtain, inner, 0)
	b.Event(10, a, trace.EvLockAcquire, outer, 0)
	b.Event(10, a, trace.EvLockObtain, outer, 0)
	b.Event(20, a, trace.EvLockAcquire, inner, 0)
	b.Event(60, c, trace.EvLockRelease, inner, 0)
	b.Event(60, a, trace.EvLockObtain, inner, 1)
	b.Exit(70, c)
	b.Event(90, a, trace.EvLockRelease, inner, 0)
	b.Event(100, a, trace.EvLockRelease, outer, 0)
	b.Exit(110, a)
	return b.Trace()
}

// ablation-clipping: clipped vs full hold accounting for hot critical
// sections (Options.ClipHold).
func init() {
	register(Experiment{
		ID:    "ablation-clipping",
		Title: "Ablation: clipped vs full hold accounting (DESIGN.md §6)",
		Paper: "design choice, not a paper artifact",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			threads := 16
			if o.Quick {
				threads = 8
			}
			spec, err := workloads.Get("radiosity")
			if err != nil {
				return nil, err
			}
			s := sim.New(sim.Config{Contexts: o.Contexts, Seed: o.Seed})
			tr, _, err := workloads.Run(s, spec, workloads.Params{Threads: threads, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			clipped, err := core.Analyze(tr, core.Options{ClipHold: true, Validate: true})
			if err != nil {
				return nil, err
			}
			full, err := core.Analyze(tr, core.Options{ClipHold: false, Validate: true})
			if err != nil {
				return nil, err
			}
			r := &Result{ID: "ablation-clipping", Title: "Hold-clipping ablation"}
			t := report.NewTable("", "Scenario", "Accounting", "Top lock", "CP Time %", "Sum of CP Time % over locks")
			sum := func(an *core.Analysis) float64 {
				var s float64
				for _, l := range an.Locks {
					s += l.CPTimePct
				}
				return s
			}
			t.AddRow("radiosity (no nesting)", "clipped (default)", clipped.Locks[0].Name, report.Pct(clipped.Locks[0].CPTimePct), report.Pct(sum(clipped)))
			t.AddRow("radiosity (no nesting)", "full hold", full.Locks[0].Name, report.Pct(full.Locks[0].CPTimePct), report.Pct(sum(full)))

			// With nested locks, an outer hold can be only partially
			// walked (the path leaves the thread at an inner blocked
			// obtain), and the two accountings diverge.
			ntr := nestedHoldTrace()
			nClipped, err := core.Analyze(ntr, core.Options{ClipHold: true, Validate: true})
			if err != nil {
				return nil, err
			}
			nFull, err := core.Analyze(ntr, core.Options{ClipHold: false, Validate: true})
			if err != nil {
				return nil, err
			}
			t.AddRow("nested locks", "clipped (default)", "outer", report.Pct(nClipped.Lock("outer").CPTimePct), report.Pct(sum(nClipped)))
			t.AddRow("nested locks", "full hold", "outer", report.Pct(nFull.Lock("outer").CPTimePct), report.Pct(sum(nFull)))
			r.Tables = append(r.Tables, t)
			notef(r, "Workloads without nested locks are insensitive to the choice (every walked hold is walked whole). With nesting, full-hold accounting credits off-path hold time to invocations that merely touch the path, so shares can exceed the path's true composition; clipping keeps per-lock shares a partition of the critical path.")
			return r, nil
		},
	})
}
