package experiments

import (
	"critlock/internal/core"
	"critlock/internal/report"
	"critlock/internal/trace"
)

// Fig1Trace reconstructs the paper's Fig. 1 illustrative execution:
// four threads, four locks, a 33-unit critical path. L2 guards four
// 3-unit hot critical sections (36.36% of the path, 75% contended on
// it); L1 one 1-unit hot critical section; L3 is an uncontended
// critical lock; and L4 — the lock with the longest idle time, the
// one idleness-based tools would flag — is entirely off the path.
// Times are scaled to microseconds so the Gantt renders cleanly.
func Fig1Trace() *trace.Trace {
	const u = 1000 // one Fig. 1 time unit
	b := trace.NewBuilder()
	b.Meta("workload", "fig1")
	t1 := b.Thread("T1", trace.NoThread)
	t2 := b.Thread("T2", t1)
	t3 := b.Thread("T3", t1)
	t4 := b.Thread("T4", t1)
	l1 := b.Mutex("L1")
	l2 := b.Mutex("L2")
	l3 := b.Mutex("L3")
	l4 := b.Mutex("L4")

	b.Start(0, t1)
	b.Start(0, t2)
	b.Start(0, t3)
	b.Start(0, t4)

	b.CS(t1, l1, 2*u, 2*u, 3*u)
	b.CS(t1, l2, 8*u, 8*u, 11*u)
	b.Exit(14*u, t1)

	b.CS(t2, l2, 9*u, 11*u, 14*u)
	b.Exit(20*u, t2)

	b.CS(t3, l4, 4*u, 4*u, 13*u)
	b.CS(t3, l2, 13*u, 14*u, 17*u)
	b.Exit(20*u, t3)

	b.CS(t4, l4, 5*u, 13*u, 14*u)
	b.CS(t4, l2, 16*u, 17*u, 20*u)
	b.CS(t4, l3, 20*u, 20*u, 24*u)
	b.Exit(33*u, t4)

	return b.Trace()
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Concept execution and critical path (paper Fig. 1)",
		Paper: "Fig. 1 and §II",
		Run: func(o Options) (*Result, error) {
			tr := Fig1Trace()
			an, err := core.AnalyzeDefault(tr)
			if err != nil {
				return nil, err
			}
			r := &Result{ID: "fig1", Title: "Fig. 1 concept execution"}
			r.Tables = append(r.Tables, report.LockReport(an, 0))
			notef(r, "%s", report.Gantt(an, 99))
			notef(r, "Paper: L2 = 4 hot CS × 3 units = 36.36%% of the 33-unit path at 75%% contention; "+
				"L1 = 3.03%%; L3 uncontended but critical; L4 (longest idle time) off the path.")
			notef(r, "Measured: L2 = %.2f%% @ %.0f%% contention on CP; L1 = %.2f%%; L3 critical=%v; L4 critical=%v (max wait %d units).",
				an.Lock("L2").CPTimePct, an.Lock("L2").ContProbOnCP,
				an.Lock("L1").CPTimePct, an.Lock("L3").Critical, an.Lock("L4").Critical,
				an.Lock("L4").MaxWait/1000)
			return r, nil
		},
	})
}
