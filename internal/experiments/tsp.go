package experiments

import (
	"fmt"

	"critlock/internal/report"
	"critlock/internal/workloads"
)

// tsp reproduces §V.E: Qlock's share of the critical path and the
// end-to-end improvement from splitting it into head/tail locks.
func init() {
	register(Experiment{
		ID:    "tsp",
		Title: "TSP: Qlock dominance and two-lock optimization (paper §V.E)",
		Paper: "§V.E and Fig. 8",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			threads := 24
			if o.Quick {
				threads = 8
			}
			anOrig, tOrig, err := runWorkload("tsp", workloads.Params{Threads: threads}, o)
			if err != nil {
				return nil, err
			}
			anOpt, tOpt, err := runWorkload("tsp", workloads.Params{Threads: threads, TwoLock: true}, o)
			if err != nil {
				return nil, err
			}
			r := &Result{ID: "tsp", Title: fmt.Sprintf("TSP at %d threads", threads)}

			t := report.NewTable("", "Variant", "Completion ns", "Top lock", "CP Time %", "Wait Time %")
			top := anOrig.Locks[0]
			t.AddRow("original (Qlock)", fmt.Sprint(tOrig), top.Name, report.Pct(top.CPTimePct), report.Pct(top.WaitTimePct))
			topOpt := anOpt.Locks[0]
			t.AddRow("optimized (head/tail)", fmt.Sprint(tOpt), topOpt.Name, report.Pct(topOpt.CPTimePct), report.Pct(topOpt.WaitTimePct))
			r.Tables = append(r.Tables, t)

			impr := 100 * float64(tOrig-tOpt) / float64(tOrig)
			notef(r, "Paper: Qlock contributes 68%% of the critical path; splitting it improves TSP by 19%% at 24 threads.")
			notef(r, "Measured: Qlock at %.2f%% of the CP; improvement %.1f%%.", top.CPTimePct, impr)
			return r, nil
		},
	})
}
