package experiments

import (
	"fmt"

	"critlock/internal/core"
	"critlock/internal/par"
	"critlock/internal/report"
	"critlock/internal/trace"
	"critlock/internal/workloads"
)

func radiositySweepThreads(o Options) []int {
	if o.Quick {
		return []int{4, 8}
	}
	return []int{4, 8, 16, 24}
}

// fig9: the two most important radiosity locks across thread counts,
// CP Time vs Wait Time. The paper's headline: freeInter leads at 8
// threads; tq[0].qlock dominates from 16 threads and reaches ~39% at
// 24 while Wait Time assigns it only ~6%.
func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Radiosity lock importance vs thread count (paper Fig. 9)",
		Paper: "Fig. 9 and §V.D.1",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			r := &Result{ID: "fig9", Title: "Radiosity: CP Time vs Wait Time across 4–24 threads"}
			t := report.NewTable("", "Threads", "Lock", "CP Time %", "Wait Time %")
			// Sweep points are independent simulations: run them on a
			// worker pool, then assemble rows in sweep order so the
			// table is identical at any parallelism.
			sweep := radiositySweepThreads(o)
			ans := make([]*core.Analysis, len(sweep))
			errs := make([]error, len(sweep))
			par.ForEach(len(sweep), o.Parallelism, func(i int) {
				ans[i], _, errs[i] = runWorkload("radiosity", workloads.Params{Threads: sweep[i]}, o)
			})
			if err := par.FirstError(errs); err != nil {
				return nil, err
			}
			for i, threads := range sweep {
				for _, l := range ans[i].TopLocks(2) {
					t.AddRow(fmt.Sprint(threads), l.Name, report.Pct(l.CPTimePct), report.Pct(l.WaitTimePct))
				}
			}
			r.Tables = append(r.Tables, t)
			notef(r, "Paper: freeInter most important at 8 threads; tq[0].qlock dominates above 8, reaching 39.15%% CP (but only 6.40%% Wait) at 24 threads.")
			return r, nil
		},
	})
}

// radiosity24 runs the 24-thread configuration once for the fig10/11
// stat tables.
func radiosity24(o Options, twoLock bool) (*core.Analysis, trace.Time, error) {
	threads := 24
	if o.Quick {
		threads = 8
	}
	return runWorkload("radiosity", workloads.Params{Threads: threads, TwoLock: twoLock}, o)
}

func contentionTable(an *core.Analysis, topN int) *report.Table {
	t := report.NewTable("",
		"Lock", "Invo. # on CP", "Cont. Prob. on CP %", "Avg. Invo. #", "Avg. Cont. Prob %", "Incr. Times of Invo. #")
	for _, l := range an.TopLocks(topN) {
		t.AddRow(l.Name,
			fmt.Sprint(l.InvocationsOnCP), report.Pct(l.ContProbOnCP),
			report.F2(l.AvgInvPerThread), report.Pct(l.AvgContProb), report.F2(l.InvIncrease))
	}
	return t
}

func sizeTable(an *core.Analysis, topN int) *report.Table {
	t := report.NewTable("",
		"Lock", "CP Time %", "Avg. Hold Time %", "Incr. Times of Critical Section Size")
	for _, l := range an.TopLocks(topN) {
		t.AddRow(l.Name, report.Pct(l.CPTimePct), report.Pct(l.AvgHoldTimePct), report.F2(l.SizeIncrease))
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Radiosity 24T contention-probability statistics (paper Fig. 10)",
		Paper: "Fig. 10 and §V.D.2a",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			an, _, err := radiosity24(o, false)
			if err != nil {
				return nil, err
			}
			r := &Result{ID: "fig10", Title: "Radiosity contention probability (24 threads)"}
			r.Tables = append(r.Tables, contentionTable(an, 3))
			notef(r, "Paper (24T): tq[0].qlock 26298 invocations on CP @ 78.69%% contention, a 7.01x increase over the 3751 per-thread average; freInter 13127 on CP @ 9.31%%, a 1.43x increase.")
			return r, nil
		},
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Radiosity 24T critical-section size statistics (paper Fig. 11)",
		Paper: "Fig. 11 and §V.D.2b",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			an, _, err := radiosity24(o, false)
			if err != nil {
				return nil, err
			}
			r := &Result{ID: "fig11", Title: "Radiosity critical-section size (24 threads)"}
			r.Tables = append(r.Tables, sizeTable(an, 3))
			notef(r, "Paper (24T): tq[0].qlock at 39.15%% of the CP with 4.76%% average hold per thread; small locks (tq[18].qlock at 0.03%% hold) stay negligible even when contended.")
			return r, nil
		},
	})
}

// fig12: speedups of the original vs two-lock-optimized radiosity
// across thread counts, both normalized to the 1-thread original run.
func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "Radiosity speedup, original vs optimized (paper Fig. 12)",
		Paper: "Fig. 12 and §V.D.3",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			threads := []int{1, 2, 4, 8, 16, 24}
			if o.Quick {
				threads = []int{1, 4, 8}
			}
			_, base, err := runWorkload("radiosity", workloads.Params{Threads: 1}, o)
			if err != nil {
				return nil, err
			}
			r := &Result{ID: "fig12", Title: "Radiosity speedup curves"}
			t := report.NewTable("", "Threads", "Original ns", "Optimized ns", "Speedup orig", "Speedup opt", "Improvement")
			// Each thread count needs an original and an optimized run;
			// all are independent, so fan them out and assemble rows in
			// sweep order afterwards.
			origs := make([]trace.Time, len(threads))
			opts := make([]trace.Time, len(threads))
			errs := make([]error, len(threads))
			par.ForEach(len(threads), o.Parallelism, func(i int) {
				n := threads[i]
				if _, elapsed, err := runWorkload("radiosity", workloads.Params{Threads: n}, o); err != nil {
					errs[i] = err
					return
				} else {
					origs[i] = elapsed
				}
				_, elapsed, err := runWorkload("radiosity", workloads.Params{Threads: n, TwoLock: true}, o)
				if err != nil {
					errs[i] = err
					return
				}
				opts[i] = elapsed
			})
			if err := par.FirstError(errs); err != nil {
				return nil, err
			}
			var last float64
			for i, n := range threads {
				orig, opt := origs[i], opts[i]
				impr := 100 * float64(orig-opt) / float64(orig)
				last = impr
				t.AddRow(fmt.Sprint(n), fmt.Sprint(orig), fmt.Sprint(opt),
					report.F2(float64(base)/float64(orig)), report.F2(float64(base)/float64(opt)),
					report.Pct(impr))
			}
			r.Tables = append(r.Tables, t)
			notef(r, "Paper: up to 7%% end-to-end improvement at 24 threads — far below tq[0].qlock's 39%% CP share, because other segments move onto the critical path after the optimization. Measured at the top thread count: %.1f%%.", last)
			return r, nil
		},
	})
}

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Optimized radiosity critical-section size statistics (paper Fig. 13)",
		Paper: "Fig. 13",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			an, _, err := radiosity24(o, true)
			if err != nil {
				return nil, err
			}
			r := &Result{ID: "fig13", Title: "Optimized radiosity critical-section size (24 threads)"}
			r.Tables = append(r.Tables, sizeTable(an, 3))
			notef(r, "Paper: tq[0].q_head_lock becomes the top lock at just 2.53%% of the CP (0.73%% average hold).")
			return r, nil
		},
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Optimized radiosity contention statistics (paper Fig. 14)",
		Paper: "Fig. 14",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			an, _, err := radiosity24(o, true)
			if err != nil {
				return nil, err
			}
			r := &Result{ID: "fig14", Title: "Optimized radiosity contention probability (24 threads)"}
			r.Tables = append(r.Tables, contentionTable(an, 3))
			notef(r, "Paper: tq[0].q_head_lock at 53.62%% contention on the CP (down from 78.69%%), 3.34x invocation increase (down from 7.01x).")
			return r, nil
		},
	})
}
