package experiments

import (
	"fmt"

	"critlock/internal/report"
	"critlock/internal/workloads"
)

// fig6 reproduces the micro-benchmark identification + validation
// experiment: CP Time vs Wait Time for L1/L2 at 4 threads, and the
// measured speedup from shrinking each lock's critical section by the
// same amount (1 unit of the 2.0/2.5-unit loops). The paper's claim:
// CP Time picks L2, Wait Time picks L1, and optimizing L2 wins.
func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Micro-benchmark: CP Time vs Wait Time, speedup after optimization (paper Fig. 6)",
		Paper: "Fig. 6 and §V.B",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			const threads = 4
			params := workloads.Params{Threads: threads, Seed: o.Seed}

			base := workloads.DefaultMicroConfig(threads)
			anBase, tBase, err := runBuilt(workloads.BuildMicro(base), params, o, "micro")
			if err != nil {
				return nil, err
			}
			// Shrink each critical section by the same 1.0ms (the
			// paper's "same amount of optimization efforts").
			optL1 := base
			optL1.CS1 -= 1_000_000
			_, tOptL1, err := runBuilt(workloads.BuildMicro(optL1), params, o, "micro-optL1")
			if err != nil {
				return nil, err
			}
			optL2 := base
			optL2.CS2 -= 1_000_000
			_, tOptL2, err := runBuilt(workloads.BuildMicro(optL2), params, o, "micro-optL2")
			if err != nil {
				return nil, err
			}

			spL1 := float64(tBase) / float64(tOptL1)
			spL2 := float64(tBase) / float64(tOptL2)

			r := &Result{ID: "fig6", Title: "Micro-benchmark identification and validation"}
			t := report.NewTable("",
				"Lock", "CP Time % (TYPE 1)", "Wait Time % (TYPE 2)", "Speedup after optimization",
				"Paper CP Time %", "Paper Wait Time %", "Paper speedup")
			l1, l2 := anBase.Lock("L1"), anBase.Lock("L2")
			t.AddRow("L1", report.Pct(l1.CPTimePct), report.Pct(l1.WaitTimePct), fmt.Sprintf("%.2f", spL1),
				"16.67%", "36.53%", "1.26")
			t.AddRow("L2", report.Pct(l2.CPTimePct), report.Pct(l2.WaitTimePct), fmt.Sprintf("%.2f", spL2),
				"83.33%", "9.02%", "1.37")
			r.Tables = append(r.Tables, t)

			ok := l2.CPTimePct > l1.CPTimePct && l1.WaitTimePct > l2.WaitTimePct && spL2 > spL1
			notef(r, "Shape check (CP Time picks L2, Wait Time picks L1, optimizing L2 wins): %v", ok)
			notef(r, "Completion times: base %d ns, L1-optimized %d ns, L2-optimized %d ns.", tBase, tOptL1, tOptL2)
			return r, nil
		},
	})
}

// fig7 renders the representative execution timeline of the
// micro-benchmark, showing L1's idle time overlapped by the critical
// path through CS2.
func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Micro-benchmark execution timeline (paper Fig. 7)",
		Paper: "Fig. 7",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			an, _, err := runWorkload("micro", workloads.Params{Threads: 4}, o)
			if err != nil {
				return nil, err
			}
			r := &Result{ID: "fig7", Title: "Micro-benchmark timeline"}
			notef(r, "%s", report.Gantt(an, 99))
			notef(r, "L1's waits (dots before the 'a' sections) overlap the critical path, which runs through the serialized L2 ('b') chain.")
			return r, nil
		},
	})
}
