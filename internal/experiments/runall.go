package experiments

import (
	"fmt"

	"critlock/internal/par"
)

// RunOutcome pairs one experiment with its result or error.
type RunOutcome struct {
	Experiment Experiment
	Result     *Result
	Err        error
}

// RunAll runs every registered experiment with up to parallelism
// concurrent runners. Experiments are independent (each builds its own
// simulator and analyzer state), so they scale to the core count; the
// returned outcomes are in paper order regardless of completion order,
// so downstream rendering is byte-identical for any parallelism.
func RunAll(opts Options, parallelism int) []RunOutcome {
	return RunSet(All(), opts, parallelism)
}

// RunSet runs the given experiments with up to parallelism concurrent
// runners, returning outcomes in input order. A panicking experiment
// is converted to an error outcome rather than taking down its
// siblings.
func RunSet(exps []Experiment, opts Options, parallelism int) []RunOutcome {
	out := make([]RunOutcome, len(exps))
	par.ForEach(len(exps), parallelism, func(i int) {
		e := exps[i]
		out[i].Experiment = e
		defer func() {
			if r := recover(); r != nil {
				out[i].Err = fmt.Errorf("experiments: %s panicked: %v", e.ID, r)
			}
		}()
		out[i].Result, out[i].Err = e.Run(opts)
	})
	return out
}

// FirstError returns the first failed outcome in order, or nil.
func FirstError(outcomes []RunOutcome) error {
	for _, oc := range outcomes {
		if oc.Err != nil {
			return fmt.Errorf("%s: %w", oc.Experiment.ID, oc.Err)
		}
	}
	return nil
}
