package experiments

import "critlock/internal/report"

// table1 documents the experimental environment mapping: the paper's
// machine and inputs against this reproduction's simulator and
// workload models.
func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Experimental environment (paper Table 1 → this reproduction)",
		Paper: "Table 1",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults()
			r := &Result{ID: "table1", Title: "Experimental environment"}
			t := report.NewTable("", "Item", "Paper", "This reproduction")
			t.AddRow("Machine", "POWER7, 2 sockets × 6 cores × SMT2 = 24 HW threads", "discrete-event simulator, 24 contexts")
			t.AddRow("Timestamps", "mftb register (user space)", "virtual nanoseconds")
			t.AddRow("OS / threads", "Linux 2.6.32 + Pthreads", "harness runtime (sim / live goroutines)")
			t.AddRow("Radiosity input", "-batch -largeroom", "task-tree model, 40 seeds × depth 5")
			t.AddRow("Water-nsquared input", "512 molecules", "480 pair chunks/step, 64 molecule locks, 3 steps")
			t.AddRow("Volrend input", "head", "400 self-scheduled tiles")
			t.AddRow("Raytrace input", "car 256", "1600 ray jobs, 2 arena allocations each")
			t.AddRow("TSP input", "10 cities", "64 seed tours, branch-and-bound depth 5")
			t.AddRow("UTS input", "-T8 -c 2 ST3", "96 geometric subtrees + 380-node spine")
			t.AddRow("OpenLDAP input", "10k directory entries, SLAMD load", "1500 generated search requests, 64 cache buckets")
			r.Tables = append(r.Tables, t)
			notef(r, "The simulator substitutes the POWER7 testbed; see DESIGN.md §2 for the substitution rationale.")
			return r, nil
		},
	})
}

// table2 renders the metric definitions of the paper's Table 2 and
// maps each onto the analyzer's fields.
func init() {
	register(Experiment{
		ID:    "table2",
		Title: "TYPE 1 / TYPE 2 statistics (paper Table 2)",
		Paper: "Table 2",
		Run: func(o Options) (*Result, error) {
			r := &Result{ID: "table2", Title: "Metric definitions"}
			t := report.NewTable("", "Family", "Metric", "Definition", "Analyzer field")
			t.AddRow("TYPE 1", "CP Time %", "fraction of critical-path time taken by the lock's hot critical sections", "LockStats.CPTimePct")
			t.AddRow("TYPE 1", "Invocation # on CP", "invocations of the lock along the critical path", "LockStats.InvocationsOnCP")
			t.AddRow("TYPE 1", "Cont. Prob. on CP %", "contention probability of the invocations along the critical path", "LockStats.ContProbOnCP")
			t.AddRow("TYPE 2", "Wait Time %", "average fraction of time each thread waits for the lock", "LockStats.WaitTimePct")
			t.AddRow("TYPE 2", "Avg. Invo. #", "average invocations of the lock per thread", "LockStats.AvgInvPerThread")
			t.AddRow("TYPE 2", "Avg. Cont. Prob %", "average contention probability of the lock", "LockStats.AvgContProb")
			t.AddRow("TYPE 2", "Avg. Hold Time %", "average fraction of time each thread holds the lock", "LockStats.AvgHoldTimePct")
			r.Tables = append(r.Tables, t)
			return r, nil
		},
	})
}
