// Package cliflags registers the flags every cla* command spells the
// same way, so the tools agree on names, defaults and usage text:
// -segdir (segmented trace directory), -window (streaming walk
// residency), -spill (collector spill threshold) and -j (parallel
// workers). Commands register only the subset they support.
package cliflags

import (
	"flag"
	"runtime"
)

// SegDir registers -segdir: a segmented trace directory in the
// bounded-memory streaming format.
func SegDir(fs *flag.FlagSet) *string {
	return fs.String("segdir", "", "segmented trace directory (bounded-memory streaming format)")
}

// Window registers -window: how many decoded segments stay resident
// during the streaming backward walk.
func Window(fs *flag.FlagSet) *int {
	return fs.Int("window", 0, "segments resident during the streaming backward walk (0 = default)")
}

// Spill registers -spill: the collector's per-thread buffered-event
// threshold beyond which events spill to segment run files.
func Spill(fs *flag.FlagSet) *int {
	return fs.Int("spill", 0, "spill threshold in buffered events per thread (0 = off; requires -segdir)")
}

// Jobs registers -j: the parallel worker count for sweeps and fan-out.
func Jobs(fs *flag.FlagSet) *int {
	return fs.Int("j", runtime.NumCPU(), "parallel workers")
}

// Par registers -par: how many goroutines the streaming analysis runs
// its forward passes on. Results are bit-identical at any setting.
func Par(fs *flag.FlagSet) *int {
	return fs.Int("par", 1, "parallel segment-range workers for streaming passes (results identical at any setting)")
}

// Mmap registers -mmap: whether segment files are memory-mapped (the
// default) or read through buffers.
func Mmap(fs *flag.FlagSet) *bool {
	return fs.Bool("mmap", true, "memory-map segment files (disable for filesystems where mapping misbehaves)")
}

// AnnBudget registers -annbudget: the resident waker-annotation ceiling
// in bytes before the streaming analysis spills to a temp file.
func AnnBudget(fs *flag.FlagSet) *int64 {
	return fs.Int64("annbudget", 0, "resident annotation budget in bytes (0 = default, negative = always spill)")
}

// Tests registers -tests: whether source-reading tools (clalint,
// clainstr) include _test.go files.
func Tests(fs *flag.FlagSet) *bool {
	return fs.Bool("tests", false, "include _test.go files")
}
