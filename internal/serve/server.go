// Package serve is the analysis-as-a-service layer: an HTTP server
// that ingests traces (request bodies in any of the trace formats, or
// server-local segment directories), runs critical lock analysis
// under a concurrency budget, caches reports by content hash, and
// exposes its own behavior through internal/obs — Prometheus-text
// /metrics with per-phase histograms, /debug/progress with live run
// snapshots, and expvar.
//
// Endpoints:
//
//	POST /v1/analyze          analyze the request body (?format=binary|json|stream)
//	POST /v1/analyze?segdir=D analyze a server-local segment directory
//	POST /v1/hazards          analyze + dynamic hazard prediction (same inputs/knobs)
//	GET  /v1/reports          list cached report IDs
//	GET  /v1/reports/{id}     fetch a cached report
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             liveness probe
//	GET  /debug/progress      live + recent analysis runs
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"critlock/internal/core"
	"critlock/internal/hazard"
	"critlock/internal/obs"
	"critlock/internal/segment"
	"critlock/internal/trace"
)

// Options configures a Server. The zero value serves with the
// defaults noted on each field.
type Options struct {
	// MaxConcurrent bounds simultaneously running analyses; further
	// requests wait for a slot (or their timeout). 0 = 4.
	MaxConcurrent int
	// Workers caps each analysis's parallel metric pass. 0 divides
	// GOMAXPROCS evenly across MaxConcurrent slots (minimum 1), so a
	// fully loaded server does not oversubscribe the CPU.
	Workers int
	// MaxUploadBytes caps an uploaded trace body. 0 = 256 MiB.
	MaxUploadBytes int64
	// Timeout bounds one analyze request, queueing included. 0 = 60s.
	Timeout time.Duration
	// TmpDir hosts streaming spill files ("" = os.TempDir).
	TmpDir string
	// Window is the default streaming walk residency for segment-dir
	// analyses, overridable per request (?window=N). 0 = core default.
	Window int
	// ParallelSegments is the default worker count for the streaming
	// forward passes, overridable per request (?par=N). 0 or 1 =
	// sequential; results are identical at any setting.
	ParallelSegments int
	// NoMmap disables memory-mapping segment files by default,
	// overridable per request (?mmap=BOOL).
	NoMmap bool
	// AnnotationBudget is the default resident waker-annotation ceiling
	// in bytes, overridable per request (?annbudget=N). 0 = core
	// default, negative = always spill.
	AnnotationBudget int64
	// CacheReports caps retained reports (FIFO eviction). 0 = 64.
	CacheReports int
}

func (o *Options) fill() {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 4
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0) / o.MaxConcurrent
		if o.Workers < 1 {
			o.Workers = 1
		}
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 256 << 20
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	if o.CacheReports <= 0 {
		o.CacheReports = 64
	}
}

// Server is the analysis HTTP service. It implements http.Handler;
// wrap it in an http.Server (or httptest.Server) to listen.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	reg     *obs.Registry
	ins     *obs.Instruments
	tracker *obs.Tracker
	sem     chan struct{}

	requests  *obs.Counter
	cacheHits *obs.Counter
	active    *obs.Gauge

	mu      sync.Mutex
	reports map[string]*Report
	order   []string // insertion order, for FIFO eviction
}

// New returns a ready Server. Its metric registry is also published to
// expvar under "critlock" (first server wins; later ones still serve
// their own /metrics).
func New(opts Options) *Server {
	opts.fill()
	reg := obs.NewRegistry()
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		reg:     reg,
		ins:     obs.NewInstruments(reg),
		tracker: obs.NewTracker(),
		sem:     make(chan struct{}, opts.MaxConcurrent),
		reports: map[string]*Report{},

		requests:  reg.Counter("critlock_server_requests_total", "HTTP requests served.", nil),
		cacheHits: reg.Counter("critlock_server_cache_hits_total", "Analyses answered from the report cache.", nil),
		active:    reg.Gauge("critlock_server_active_analyses", "Analyses currently running.", nil),
	}
	reg.PublishExpvar("critlock")

	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/hazards", s.handleHazards)
	s.mux.HandleFunc("GET /v1/reports", s.handleReportList)
	s.mux.HandleFunc("GET /v1/reports/{id}", s.handleReportGet)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/progress", s.handleProgress)
	return s
}

// Registry exposes the server's metric registry (for embedding hosts
// that want to add their own instruments).
func (s *Server) Registry() *obs.Registry { return s.reg }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// httpError is an error with a dedicated HTTP status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, format string, args ...any) error {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, trace.ErrTruncated), errors.Is(err, trace.ErrChecksum),
		errors.Is(err, trace.ErrEmptyTrace):
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// analyzeParams are the per-request knobs, parsed from the query.
type analyzeParams struct {
	format      string // binary | json | stream (body uploads)
	segdir      string // server-local segment directory
	window      int
	par         int
	mmap        bool
	annBudget   int64
	composition bool
	clip        bool
	validate    bool
	// hazards runs the dynamic hazard pass and attaches its report
	// (set by the /v1/hazards endpoint, not a query knob).
	hazards bool
}

func parseParams(r *http.Request, defaults Options) (analyzeParams, error) {
	q := r.URL.Query()
	p := analyzeParams{
		format:    "binary",
		segdir:    q.Get("segdir"),
		window:    defaults.Window,
		par:       defaults.ParallelSegments,
		mmap:      !defaults.NoMmap,
		annBudget: defaults.AnnotationBudget,
		clip:      true,
		validate:  true,
	}
	if f := q.Get("format"); f != "" {
		switch f {
		case "binary", "json", "stream":
			p.format = f
		default:
			return p, httpErrorf(http.StatusBadRequest, "unknown format %q (want binary, json or stream)", f)
		}
	}
	boolParam := func(name string, dst *bool) error {
		if v := q.Get(name); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return httpErrorf(http.StatusBadRequest, "bad %s=%q: want a boolean", name, v)
			}
			*dst = b
		}
		return nil
	}
	if v := q.Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, httpErrorf(http.StatusBadRequest, "bad window=%q: want a non-negative integer", v)
		}
		p.window = n
	}
	if v := q.Get("par"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, httpErrorf(http.StatusUnprocessableEntity, "bad par=%q: want a non-negative integer", v)
		}
		p.par = n
	}
	if v := q.Get("mmap"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return p, httpErrorf(http.StatusUnprocessableEntity, "bad mmap=%q: want a boolean", v)
		}
		p.mmap = b
	}
	if v := q.Get("annbudget"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return p, httpErrorf(http.StatusUnprocessableEntity, "bad annbudget=%q: want an integer byte count", v)
		}
		p.annBudget = n
	}
	for name, dst := range map[string]*bool{
		"composition": &p.composition, "clip": &p.clip, "validate": &p.validate,
	} {
		if err := boolParam(name, dst); err != nil {
			return p, err
		}
	}
	return p, nil
}

// fingerprint folds the options that change analysis output into the
// cache key (window and validate do not alter results, but window is
// included so operators can compare runs; validate is excluded).
func (p analyzeParams) fingerprint() string {
	fp := fmt.Sprintf("clip=%t composition=%t", p.clip, p.composition)
	if p.hazards {
		// Appended conditionally so pre-existing /v1/analyze cache keys
		// (and the smoke golden) are unchanged.
		fp += " hazards=true"
	}
	return fp
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.serveAnalysis(w, r, false)
}

// handleHazards is /v1/analyze plus the dynamic hazard pass: the same
// inputs and knobs, with the report's hazards section populated (and a
// distinct cache key, so the two endpoints never alias).
func (s *Server) handleHazards(w http.ResponseWriter, r *http.Request) {
	s.serveAnalysis(w, r, true)
}

func (s *Server) serveAnalysis(w http.ResponseWriter, r *http.Request, hazards bool) {
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()

	params, err := parseParams(r, s.opts)
	if err != nil {
		writeError(w, err)
		return
	}
	params.hazards = hazards

	var rep *Report
	if params.segdir != "" {
		rep, err = s.analyzeSegdir(ctx, params)
	} else {
		rep, err = s.analyzeBody(ctx, r, params)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// analyzeBody ingests a trace from the request body.
func (s *Server) analyzeBody(ctx context.Context, r *http.Request, params analyzeParams) (*Report, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, s.opts.MaxUploadBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, httpErrorf(http.StatusRequestEntityTooLarge, "trace exceeds the %d-byte upload limit", tooBig.Limit)
		}
		return nil, fmt.Errorf("reading upload: %w", err)
	}
	if len(body) == 0 {
		return nil, httpErrorf(http.StatusBadRequest, "empty request body (upload a trace, or pass ?segdir=)")
	}

	sum := sha256.Sum256(body)
	id := hex.EncodeToString(sum[:8]) + "-" + shortHash(params.fingerprint())
	if rep := s.cached(id); rep != nil {
		s.cacheHits.Add(1)
		return rep, nil
	}

	var tr *trace.Trace
	switch params.format {
	case "json":
		tr, err = trace.ReadJSON(bytes.NewReader(body))
	case "stream":
		tr, err = trace.ReadStream(bytes.NewReader(body))
		if err != nil && errors.Is(err, trace.ErrTruncatedStream) && tr != nil && len(tr.Events) > 0 {
			err = nil // analyze the durable prefix, as cla does
		}
	default:
		tr, err = trace.ReadBinary(bytes.NewReader(body))
	}
	if err != nil {
		// An undecodable upload is the client's problem, not ours.
		return nil, &httpError{http.StatusUnprocessableEntity,
			fmt.Sprintf("decoding %s trace: %v", params.format, err)}
	}

	an, err := s.run(ctx, id, "trace", core.TraceSource(tr), params)
	if err != nil {
		return nil, err
	}
	rep := buildReport(id, "trace", false, an)
	if params.hazards {
		hz, err := hazard.FromTrace(tr)
		if err != nil {
			return nil, &httpError{http.StatusUnprocessableEntity,
				fmt.Sprintf("hazard analysis: %v", err)}
		}
		rep.Hazards = hz
	}
	return s.store(rep), nil
}

// analyzeSegdir ingests a server-local segment directory.
func (s *Server) analyzeSegdir(ctx context.Context, params analyzeParams) (*Report, error) {
	manifest, err := os.ReadFile(filepath.Join(params.segdir, segment.ManifestName))
	if err != nil {
		return nil, httpErrorf(http.StatusNotFound, "segment directory %s: %v", params.segdir, err)
	}
	sum := sha256.Sum256(manifest)
	id := hex.EncodeToString(sum[:8]) + "-" + shortHash(params.fingerprint())
	source := "segments:" + params.segdir
	if rep := s.cached(id); rep != nil {
		s.cacheHits.Add(1)
		return rep, nil
	}

	rdr, err := segment.OpenWith(params.segdir, segment.ReadOptions{NoMmap: !params.mmap})
	if err != nil {
		return nil, fmt.Errorf("opening %s: %w", params.segdir, err)
	}
	// closingSource releases the reader's mappings when the analysis
	// goroutine finishes, even if the request deadline abandoned it.
	an, err := s.run(ctx, id, source, closingSource{rdr}, params)
	if err != nil {
		return nil, err
	}
	rep := buildReport(id, source, true, an)
	if params.hazards {
		// The analysis source closed its reader; the hazard pass streams
		// the directory again on a fresh one (segment-range parallel).
		hrdr, err := segment.OpenWith(params.segdir, segment.ReadOptions{NoMmap: !params.mmap})
		if err != nil {
			return nil, fmt.Errorf("reopening %s: %w", params.segdir, err)
		}
		hz, err := hazard.FromSegments(hrdr, params.par)
		hrdr.Close()
		if err != nil {
			return nil, &httpError{http.StatusUnprocessableEntity,
				fmt.Sprintf("hazard analysis: %v", err)}
		}
		rep.Hazards = hz
	}
	return s.store(rep), nil
}

// run executes one analysis under the concurrency budget, the request
// deadline and full observation (shared instruments + progress
// tracker).
func (s *Server) run(ctx context.Context, id, source string, src core.Source, params analyzeParams) (*core.Analysis, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, httpErrorf(http.StatusServiceUnavailable, "timed out waiting for an analysis slot")
	}

	tracked := s.tracker.Start(id, source)
	s.active.Add(1)
	cleanup := func() {
		tracked.Done()
		s.active.Add(-1)
		<-s.sem
	}

	cfg := core.Config{
		Options: core.Options{
			ClipHold: params.clip,
			Validate: params.validate,
			Workers:  s.opts.Workers,
			Observer: obs.Combine(s.ins.Run(), tracked),
		},
		CacheSegments:    params.window,
		TmpDir:           s.opts.TmpDir,
		Composition:      params.composition,
		ParallelSegments: params.par,
		NoMmap:           !params.mmap,
		AnnotationBudget: params.annBudget,
	}

	// The pipeline is not cancellable mid-pass, so a deadline abandons
	// the goroutine: it finishes on its own (bounded by the trace
	// size) and its result is dropped. The semaphore slot and tracker
	// entry are held until then, keeping the concurrency budget and
	// /debug/progress honest.
	type result struct {
		an  *core.Analysis
		err error
	}
	ch := make(chan result, 1)
	go func() {
		an, err := core.AnalyzeSource(src, cfg)
		ch <- result{an, err}
	}()
	select {
	case res := <-ch:
		cleanup()
		return res.an, res.err
	case <-ctx.Done():
		go func() { <-ch; cleanup() }()
		return nil, httpErrorf(http.StatusGatewayTimeout, "analysis exceeded the %s request budget", s.opts.Timeout)
	}
}

// closingSource streams from an open segment reader and closes it when
// the analysis returns, so abandoned (timed-out) runs still release
// their file mappings.
type closingSource struct{ rdr *segment.Reader }

func (c closingSource) Run(a *core.Analyzer, cfg core.Config) (*core.Analysis, error) {
	defer c.rdr.Close()
	return core.StreamSource(c.rdr).Run(a, cfg)
}

// cached returns the report for id, or nil.
func (s *Server) cached(id string) *Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reports[id]
}

// store caches rep (FIFO eviction at the cap) and returns it.
func (s *Server) store(rep *Report) *Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.reports[rep.ID]; !ok {
		s.reports[rep.ID] = rep
		s.order = append(s.order, rep.ID)
		for len(s.order) > s.opts.CacheReports {
			delete(s.reports, s.order[0])
			s.order = s.order[1:]
		}
	}
	return rep
}

func (s *Server) handleReportList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	s.mu.Unlock()
	sort.Strings(ids)
	writeJSON(w, http.StatusOK, map[string]any{"reports": ids})
}

func (s *Server) handleReportGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rep := s.cached(id)
	if rep == nil {
		writeError(w, httpErrorf(http.StatusNotFound, "no report %q (it may have been evicted; re-POST the trace)", id))
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"runs": s.tracker.Snapshot()})
}

// shortHash is a compact stable digest for cache-key suffixes.
func shortHash(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:4])
}
