package serve

import (
	"critlock/internal/core"
	"critlock/internal/report"
)

// Report is the JSON analysis result clasrv serves. The shape lives
// in internal/report (report.Export) so that cla -jsonreport writes
// the identical format and clalint -report can join on it; see that
// package for field documentation.
type Report = report.Export

// Summary, TimelinePiece and TimelineJump are re-exported for
// existing callers of this package.
type (
	Summary       = report.ExportSummary
	TimelinePiece = report.TimelinePiece
	TimelineJump  = report.TimelineJump
)

// buildReport flattens an analysis into the served report.
func buildReport(id, source string, streamed bool, an *core.Analysis) *Report {
	return report.BuildExport(id, source, streamed, an)
}
