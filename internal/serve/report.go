package serve

import (
	"critlock/internal/core"
	"critlock/internal/trace"
)

// Report is the JSON analysis result clasrv serves. Every field is a
// deterministic function of the uploaded trace and the request's
// options — no wall-clock timestamps or durations — so reports cache
// by content hash and diff cleanly against goldens.
type Report struct {
	// ID is the report's cache key: the hex content hash of the
	// uploaded trace combined with the analysis options.
	ID string `json:"id"`
	// Source describes where the events came from ("trace" for body
	// uploads, "segments:<dir>" for segment directories).
	Source string `json:"source"`
	// Streamed reports whether the bounded-memory pipeline ran (the
	// report then has no event-replay sections).
	Streamed bool `json:"streamed"`

	Summary  Summary            `json:"summary"`
	Totals   core.Totals        `json:"totals"`
	Locks    []core.LockStats   `json:"locks"`
	Threads  []core.ThreadStats `json:"threads"`
	Timeline []TimelinePiece    `json:"timeline"`
	Jumps    []TimelineJump     `json:"jumps"`
}

// Summary is the whole-run critical-path header.
type Summary struct {
	CPLength   trace.Time     `json:"cp_length"`
	ExecTime   trace.Time     `json:"exec_time"`
	WaitTime   trace.Time     `json:"wait_time"`
	WallTime   trace.Time     `json:"wall_time"`
	Coverage   float64        `json:"coverage"`
	LastThread trace.ThreadID `json:"last_thread"`
	Steps      int            `json:"steps"`
	Jumps      int            `json:"jumps"`
}

// TimelinePiece is one walked critical-path interval.
type TimelinePiece struct {
	Thread trace.ThreadID `json:"thread"`
	From   trace.Time     `json:"from"`
	To     trace.Time     `json:"to"`
	Wait   bool           `json:"wait,omitempty"`
}

// TimelineJump is one cross-thread hop of the critical path.
type TimelineJump struct {
	T    trace.Time     `json:"t"`
	From trace.ThreadID `json:"from"`
	To   trace.ThreadID `json:"to"`
	Kind string         `json:"kind"`
	Obj  string         `json:"obj,omitempty"`
}

// buildReport flattens an analysis into the served report.
func buildReport(id, source string, streamed bool, an *core.Analysis) *Report {
	rep := &Report{
		ID:       id,
		Source:   source,
		Streamed: streamed,
		Summary: Summary{
			CPLength:   an.CP.Length,
			ExecTime:   an.CP.ExecTime,
			WaitTime:   an.CP.WaitTime,
			WallTime:   an.CP.WallTime,
			Coverage:   an.CP.Coverage(),
			LastThread: an.CP.LastThread,
			Steps:      an.CP.Steps,
			Jumps:      an.CP.Jumps,
		},
		Totals:  an.Totals,
		Locks:   an.Locks,
		Threads: an.Threads,
	}
	rep.Timeline = make([]TimelinePiece, len(an.CP.Pieces))
	for i, p := range an.CP.Pieces {
		rep.Timeline[i] = TimelinePiece{
			Thread: p.Thread, From: p.From, To: p.To,
			Wait: p.Kind == core.PieceWait,
		}
	}
	rep.Jumps = make([]TimelineJump, len(an.CP.JumpLog))
	for i, j := range an.CP.JumpLog {
		tj := TimelineJump{T: j.T, From: j.From, To: j.To, Kind: j.Kind.String()}
		if j.Obj != trace.NoObj {
			tj.Obj = an.Trace.ObjName(j.Obj)
		}
		rep.Jumps[i] = tj
	}
	return rep
}
