package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"critlock"
	"critlock/internal/segment"
	"critlock/internal/serve"
)

// microTrace builds the deterministic micro-benchmark trace every test
// uploads.
func microTrace(t *testing.T) *critlock.Trace {
	t.Helper()
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	tr, _, err := critlock.RunWorkload(sim, "micro", critlock.WorkloadParams{Threads: 4, Seed: 1})
	if err != nil {
		t.Fatalf("running micro: %v", err)
	}
	return tr
}

func traceBytes(t *testing.T, tr *critlock.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := critlock.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv := serve.New(opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// post uploads body to /v1/analyze and returns status + raw response.
func post(t *testing.T, ts *httptest.Server, query string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/analyze"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func decodeReport(t *testing.T, raw []byte) serve.Report {
	t.Helper()
	var rep serve.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("decoding report: %v\n%s", err, raw)
	}
	return rep
}

// counter reads one nil-label counter from the server's registry.
func counter(t *testing.T, srv *serve.Server, name string) int64 {
	t.Helper()
	v, ok := srv.Registry().Snapshot()[name]
	if !ok {
		t.Fatalf("metric %s not registered", name)
	}
	n, ok := v.(int64)
	if !ok {
		t.Fatalf("metric %s is %T, want int64", name, v)
	}
	return n
}

func TestUploadAnalyzeReport(t *testing.T) {
	srv, ts := newTestServer(t, serve.Options{})
	body := traceBytes(t, microTrace(t))

	status, raw := post(t, ts, "", body)
	if status != http.StatusOK {
		t.Fatalf("POST /v1/analyze = %d, want 200\n%s", status, raw)
	}
	rep := decodeReport(t, raw)
	if rep.ID == "" || rep.Source != "trace" || rep.Streamed {
		t.Errorf("report header = ID %q Source %q Streamed %v", rep.ID, rep.Source, rep.Streamed)
	}
	if rep.Summary.CPLength <= 0 || rep.Summary.Coverage <= 0 {
		t.Errorf("empty summary: %+v", rep.Summary)
	}
	if rep.Totals.Threads == 0 || len(rep.Locks) == 0 || len(rep.Threads) != rep.Totals.Threads {
		t.Errorf("totals/locks/threads wrong: %d threads, %d locks, %d thread rows",
			rep.Totals.Threads, len(rep.Locks), len(rep.Threads))
	}
	if len(rep.Timeline) == 0 || len(rep.Jumps) != rep.Summary.Jumps {
		t.Errorf("timeline %d pieces / %d jumps, summary says %d jumps",
			len(rep.Timeline), len(rep.Jumps), rep.Summary.Jumps)
	}

	// The same body again is a cache hit with the identical report.
	status2, raw2 := post(t, ts, "", body)
	if status2 != http.StatusOK || !bytes.Equal(raw, raw2) {
		t.Errorf("re-upload: status %d, identical=%v", status2, bytes.Equal(raw, raw2))
	}
	if hits := counter(t, srv, "critlock_server_cache_hits_total"); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	// Different options are a different cache entry, not a hit.
	status3, raw3 := post(t, ts, "?clip=false", body)
	if status3 != http.StatusOK {
		t.Fatalf("POST ?clip=false = %d", status3)
	}
	if rep3 := decodeReport(t, raw3); rep3.ID == rep.ID {
		t.Errorf("clip=false reused cache key %s", rep.ID)
	}
	if hits := counter(t, srv, "critlock_server_cache_hits_total"); hits != 1 {
		t.Errorf("cache hits after option change = %d, want still 1", hits)
	}

	// The report is retrievable by ID and listed.
	status4, raw4 := get(t, ts, "/v1/reports/"+rep.ID)
	if status4 != http.StatusOK || !bytes.Equal(raw4, raw) {
		t.Errorf("GET /v1/reports/%s: status %d, identical=%v", rep.ID, status4, bytes.Equal(raw4, raw))
	}
	if status, raw := get(t, ts, "/v1/reports"); status != http.StatusOK || !bytes.Contains(raw, []byte(rep.ID)) {
		t.Errorf("GET /v1/reports = %d, lists id=%v", status, bytes.Contains(raw, []byte(rep.ID)))
	}
	if status, _ := get(t, ts, "/v1/reports/nope"); status != http.StatusNotFound {
		t.Errorf("GET unknown report = %d, want 404", status)
	}
}

// TestSegdirMatchesUpload is the serving-layer differential oracle: a
// segment-directory analysis must serve the same numbers as uploading
// the raw trace, differing only in the header fields that describe the
// source.
func TestSegdirMatchesUpload(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{})
	tr := microTrace(t)

	_, raw := post(t, ts, "", traceBytes(t, tr))
	fromBody := decodeReport(t, raw)

	dir := t.TempDir()
	if err := segment.WriteTrace(dir, tr, segment.Options{SegmentEvents: 64}); err != nil {
		t.Fatal(err)
	}
	status, raw2 := post(t, ts, "?segdir="+dir+"&window=3", nil)
	if status != http.StatusOK {
		t.Fatalf("POST ?segdir = %d\n%s", status, raw2)
	}
	fromDir := decodeReport(t, raw2)

	if !fromDir.Streamed || !strings.HasPrefix(fromDir.Source, "segments:") {
		t.Errorf("segdir report header: Streamed %v Source %q", fromDir.Streamed, fromDir.Source)
	}
	if !reflect.DeepEqual(fromBody.Summary, fromDir.Summary) {
		t.Errorf("summaries differ:\nbody %+v\ndir  %+v", fromBody.Summary, fromDir.Summary)
	}
	if !reflect.DeepEqual(fromBody.Totals, fromDir.Totals) {
		t.Errorf("totals differ")
	}
	if !reflect.DeepEqual(fromBody.Locks, fromDir.Locks) {
		t.Errorf("lock stats differ")
	}
	if !reflect.DeepEqual(fromBody.Threads, fromDir.Threads) {
		t.Errorf("thread stats differ")
	}
	if !reflect.DeepEqual(fromBody.Timeline, fromDir.Timeline) {
		t.Errorf("timelines differ")
	}
	if !reflect.DeepEqual(fromBody.Jumps, fromDir.Jumps) {
		t.Errorf("jumps differ")
	}
}

func TestObservability(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{})
	post(t, ts, "", traceBytes(t, microTrace(t)))

	status, raw := get(t, ts, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics = %d", status)
	}
	metrics := string(raw)
	for _, want := range []string{
		"# TYPE critlock_phase_seconds histogram",
		`critlock_phase_seconds_count{phase="walk"}`,
		"critlock_analysis_events_total",
		"critlock_server_requests_total",
		"critlock_server_active_analyses 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if status, raw := get(t, ts, "/healthz"); status != http.StatusOK || string(raw) != "ok\n" {
		t.Errorf("/healthz = %d %q", status, raw)
	}

	status, raw = get(t, ts, "/debug/progress")
	if status != http.StatusOK {
		t.Fatalf("GET /debug/progress = %d", status)
	}
	var prog struct {
		Runs []map[string]any `json:"runs"`
	}
	if err := json.Unmarshal(raw, &prog); err != nil {
		t.Fatalf("decoding progress: %v\n%s", err, raw)
	}
	if len(prog.Runs) == 0 {
		t.Errorf("/debug/progress shows no runs after an analysis")
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{MaxUploadBytes: 1 << 20})

	if status, _ := post(t, ts, "", nil); status != http.StatusBadRequest {
		t.Errorf("empty body = %d, want 400", status)
	}
	if status, _ := post(t, ts, "?format=xml", []byte("x")); status != http.StatusBadRequest {
		t.Errorf("bad format = %d, want 400", status)
	}
	if status, _ := post(t, ts, "?window=-1", []byte("x")); status != http.StatusBadRequest {
		t.Errorf("bad window = %d, want 400", status)
	}
	if status, _ := post(t, ts, "?clip=maybe", []byte("x")); status != http.StatusBadRequest {
		t.Errorf("bad clip = %d, want 400", status)
	}
	if status, _ := post(t, ts, "", []byte("not a trace")); status != http.StatusUnprocessableEntity {
		t.Errorf("garbage trace = %d, want 422", status)
	}
	if status, _ := post(t, ts, "?segdir="+t.TempDir(), nil); status != http.StatusNotFound {
		t.Errorf("segdir without manifest = %d, want 404", status)
	}
	if status, _ := post(t, ts, "", bytes.Repeat([]byte("A"), 2<<20)); status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload = %d, want 413", status)
	}

	// A truncated binary trace reports 422 through the typed error set.
	body := traceBytes(t, microTrace(t))
	if status, _ := post(t, ts, "", body[:len(body)-7]); status != http.StatusUnprocessableEntity {
		t.Errorf("truncated trace = %d, want 422", status)
	}
}

// TestHazardsEndpoint: /v1/hazards is /v1/analyze plus the dynamic
// hazard section, with its own cache key, over both upload and segdir
// inputs.
func TestHazardsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{})
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	tr, _, err := critlock.RunWorkload(sim, "deadlockprone", critlock.WorkloadParams{Seed: 1})
	if err != nil {
		t.Fatalf("running deadlockprone: %v", err)
	}
	body := traceBytes(t, tr)

	resp, err := http.Post(ts.URL+"/v1/hazards", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/hazards = %d\n%s", resp.StatusCode, raw)
	}
	rep := decodeReport(t, raw)
	if rep.Hazards == nil {
		t.Fatal("/v1/hazards report has no hazards section")
	}
	if len(rep.Hazards.Cycles) != 1 {
		t.Errorf("deadlockprone cycles = %d, want 1", len(rep.Hazards.Cycles))
	}
	if rep.Summary.CPLength <= 0 {
		t.Errorf("hazards report lost the analysis summary: %+v", rep.Summary)
	}

	// Plain /v1/analyze of the same body: no hazards, distinct cache key.
	_, raw2 := post(t, ts, "", body)
	plain := decodeReport(t, raw2)
	if plain.Hazards != nil {
		t.Error("/v1/analyze report unexpectedly has a hazards section")
	}
	if plain.ID == rep.ID {
		t.Errorf("/v1/analyze and /v1/hazards share cache key %s", rep.ID)
	}

	// Segdir input serves the identical hazard section.
	dir := t.TempDir()
	if err := segment.WriteTrace(dir, tr, segment.Options{SegmentEvents: 64}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/hazards?segdir="+dir+"&par=4", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw3, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/hazards?segdir = %d\n%s", resp.StatusCode, raw3)
	}
	fromDir := decodeReport(t, raw3)
	if fromDir.Hazards == nil {
		t.Fatal("segdir hazards report has no hazards section")
	}
	a, _ := json.Marshal(rep.Hazards)
	b, _ := json.Marshal(fromDir.Hazards)
	if !bytes.Equal(a, b) {
		t.Errorf("segdir hazard section differs from upload:\n%s\n%s", a, b)
	}
}

func TestReportCacheEviction(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{CacheReports: 1})
	body := traceBytes(t, microTrace(t))

	_, raw := post(t, ts, "", body)
	first := decodeReport(t, raw)
	_, raw2 := post(t, ts, "?clip=false", body)
	second := decodeReport(t, raw2)

	if status, _ := get(t, ts, "/v1/reports/"+first.ID); status != http.StatusNotFound {
		t.Errorf("evicted report still served: %d", status)
	}
	if status, _ := get(t, ts, "/v1/reports/"+second.ID); status != http.StatusOK {
		t.Errorf("latest report not served: %d", status)
	}
}
