package serve_test

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"critlock"
	"critlock/internal/serve"
)

// TestServeSmokeGolden drives the full serving path — synth workload →
// simulator → binary trace → HTTP upload → JSON report — and diffs the
// response byte-for-byte against a checked-in golden. Any change to
// the analysis numbers, the report schema or the JSON rendering shows
// up as a diff here. Refresh with:
//
//	UPDATE_SERVE_GOLDEN=1 go test ./internal/serve -run Golden
func TestServeSmokeGolden(t *testing.T) {
	cfgFile, err := os.Open(filepath.Join("testdata", "smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer cfgFile.Close()
	cfg, err := critlock.LoadSynth(cfgFile)
	if err != nil {
		t.Fatalf("loading smoke config: %v", err)
	}
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	tr, _, err := critlock.RunSynth(sim, cfg, critlock.WorkloadParams{Seed: 1})
	if err != nil {
		t.Fatalf("running smoke workload: %v", err)
	}

	_, ts := newTestServer(t, serve.Options{})
	status, got := post(t, ts, "", traceBytes(t, tr))
	if status != http.StatusOK {
		t.Fatalf("POST /v1/analyze = %d\n%s", status, got)
	}

	goldenPath := filepath.Join("testdata", "smoke_report.golden")
	if os.Getenv("UPDATE_SERVE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_SERVE_GOLDEN=1 to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("served report differs from %s (%d vs %d bytes); rerun with UPDATE_SERVE_GOLDEN=1 if the change is intended",
			goldenPath, len(got), len(want))
	}
}

// TestServeChanGolden does the same for a channel-dominated workload:
// the served report must carry the hot-channel table (chans section)
// and channel-aware jump kinds, pinned byte-for-byte.
func TestServeChanGolden(t *testing.T) {
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	tr, _, err := critlock.RunWorkload(sim, "pipeline", critlock.WorkloadParams{Threads: 4, Seed: 1})
	if err != nil {
		t.Fatalf("running pipeline workload: %v", err)
	}

	_, ts := newTestServer(t, serve.Options{})
	status, got := post(t, ts, "", traceBytes(t, tr))
	if status != http.StatusOK {
		t.Fatalf("POST /v1/analyze = %d\n%s", status, got)
	}

	goldenPath := filepath.Join("testdata", "pipeline_report.golden")
	if os.Getenv("UPDATE_SERVE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_SERVE_GOLDEN=1 to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("served report differs from %s (%d vs %d bytes); rerun with UPDATE_SERVE_GOLDEN=1 if the change is intended",
			goldenPath, len(got), len(want))
	}
	if !bytes.Contains(got, []byte(`"chans"`)) {
		t.Error("served pipeline report has no chans section")
	}
}
