package obs

import (
	"sync"
	"time"
)

// Progress is a point-in-time snapshot of one analysis run. Counts are
// cumulative over the run, not deltas; the analyzer emits a snapshot
// at every phase boundary and after every scanned segment.
type Progress struct {
	// Phase names the pipeline stage currently executing: "validate",
	// "index", "walk" and "metrics" for the in-memory pipeline;
	// "pass1", "walk" and "pass3" for the three streaming passes.
	Phase string `json:"phase"`
	// Events is the number of events processed so far.
	Events int64 `json:"events"`
	// TotalEvents is the run's total event count (0 if unknown).
	TotalEvents int64 `json:"total_events"`
	// Segments is the number of segment loads so far (0 for the
	// in-memory pipeline).
	Segments int64 `json:"segments"`
	// BytesSpilled is the number of bytes written to spill storage
	// (annotation temp file, collector run files).
	BytesSpilled int64 `json:"bytes_spilled"`
	// BytesRead is the number of encoded segment-body bytes decoded so
	// far (0 for the in-memory pipeline and for sources that do not
	// report sizes). Per-pass throughput derives from its growth.
	BytesRead int64 `json:"bytes_read"`
}

// Observer receives the analysis pipeline's self-instrumentation
// callbacks. Implementations must be cheap: hooks fire on the analysis
// hot path (phase boundaries and per-segment, never per-event).
type Observer interface {
	// PhaseStart fires when a pipeline phase begins.
	PhaseStart(phase string)
	// PhaseDone fires when a pipeline phase completes, with its
	// duration.
	PhaseDone(phase string, d time.Duration)
	// OnProgress fires with a cumulative snapshot.
	OnProgress(p Progress)
}

// Funcs adapts bare functions into an Observer; nil fields are
// skipped. The zero value is a no-op Observer.
type Funcs struct {
	Start    func(phase string)
	Done     func(phase string, d time.Duration)
	Progress func(p Progress)
}

func (f Funcs) PhaseStart(phase string) {
	if f.Start != nil {
		f.Start(phase)
	}
}

func (f Funcs) PhaseDone(phase string, d time.Duration) {
	if f.Done != nil {
		f.Done(phase, d)
	}
}

func (f Funcs) OnProgress(p Progress) {
	if f.Progress != nil {
		f.Progress(p)
	}
}

// multi fans callbacks out to several observers in order.
type multi []Observer

func (m multi) PhaseStart(phase string) {
	for _, o := range m {
		o.PhaseStart(phase)
	}
}

func (m multi) PhaseDone(phase string, d time.Duration) {
	for _, o := range m {
		o.PhaseDone(phase, d)
	}
}

func (m multi) OnProgress(p Progress) {
	for _, o := range m {
		o.OnProgress(p)
	}
}

// Combine composes observers, tolerating nils: Combine(nil, o) == o.
// It returns nil when every input is nil.
func Combine(os ...Observer) Observer {
	var out multi
	for _, o := range os {
		switch v := o.(type) {
		case nil:
		case multi:
			out = append(out, v...)
		default:
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// Instruments folds analysis observer callbacks into a Registry:
// per-phase duration histograms and whole-pipeline throughput
// counters. One Instruments is shared by all runs; each run gets its
// own Observer from Run() (Progress snapshots are cumulative, so the
// per-run adapter converts them to counter deltas).
type Instruments struct {
	reg      *Registry
	events   *Counter
	segments *Counter
	spilled  *Counter
	read     *Counter
}

// NewInstruments binds instrumentation to reg, creating the counter
// families eagerly so /metrics shows them at zero before any run.
func NewInstruments(reg *Registry) *Instruments {
	return &Instruments{
		reg:      reg,
		events:   reg.Counter("critlock_analysis_events_total", "Trace events processed by analysis passes.", nil),
		segments: reg.Counter("critlock_analysis_segments_total", "Segment loads performed by streaming analyses.", nil),
		spilled:  reg.Counter("critlock_analysis_spilled_bytes_total", "Bytes written to analysis spill storage.", nil),
		read:     reg.Counter("critlock_analysis_read_bytes_total", "Encoded segment bytes decoded by streaming analyses.", nil),
	}
}

// phaseHistogram returns the duration histogram for one phase.
func (ins *Instruments) phaseHistogram(phase string) *Histogram {
	return ins.reg.Histogram("critlock_phase_seconds",
		"Duration of analysis pipeline phases.",
		map[string]string{"phase": phase}, nil)
}

// rateBuckets bound the per-pass decode-throughput histogram, in MB/s.
var rateBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// rateHistogram returns the decode-throughput histogram for one phase.
func (ins *Instruments) rateHistogram(phase string) *Histogram {
	return ins.reg.Histogram("critlock_pass_mbps",
		"Segment decode throughput of analysis passes, MB per second.",
		map[string]string{"phase": phase}, rateBuckets)
}

// Run returns a fresh per-run Observer feeding this Instruments.
func (ins *Instruments) Run() Observer { return &insRun{ins: ins} }

// insRun tracks one run's last cumulative Progress so shared counters
// advance by deltas, plus the bytes mark at the current phase's start
// so PhaseDone can observe the phase's decode throughput.
type insRun struct {
	ins        *Instruments
	mu         sync.Mutex
	last       Progress
	phaseBytes int64
}

func (r *insRun) PhaseStart(string) {
	r.mu.Lock()
	r.phaseBytes = r.last.BytesRead
	r.mu.Unlock()
}

func (r *insRun) PhaseDone(phase string, d time.Duration) {
	r.ins.phaseHistogram(phase).Observe(d.Seconds())
	r.mu.Lock()
	dBytes := r.last.BytesRead - r.phaseBytes
	r.phaseBytes = r.last.BytesRead
	r.mu.Unlock()
	// The analyzer emits the phase's final snapshot before PhaseDone,
	// so dBytes covers the whole phase.
	if dBytes > 0 && d > 0 {
		r.ins.rateHistogram(phase).Observe(float64(dBytes) / 1e6 / d.Seconds())
	}
}

func (r *insRun) OnProgress(p Progress) {
	r.mu.Lock()
	// The event cursor resets at phase boundaries (each pass re-reads
	// the trace), so a phase change restarts the event delta from zero;
	// Segments, BytesSpilled and BytesRead stay cumulative over the
	// whole run.
	if p.Phase != r.last.Phase {
		r.last.Events = 0
	}
	dEvents := p.Events - r.last.Events
	dSegments := p.Segments - r.last.Segments
	dSpilled := p.BytesSpilled - r.last.BytesSpilled
	dRead := p.BytesRead - r.last.BytesRead
	r.last = p
	r.mu.Unlock()
	// Only forward movement within a phase counts.
	if dEvents > 0 {
		r.ins.events.Add(dEvents)
	}
	if dSegments > 0 {
		r.ins.segments.Add(dSegments)
	}
	if dSpilled > 0 {
		r.ins.spilled.Add(dSpilled)
	}
	if dRead > 0 {
		r.ins.read.Add(dRead)
	}
}

// RunStatus is one live analysis run's externally visible state — what
// /debug/progress serves.
type RunStatus struct {
	ID      string    `json:"id"`
	Source  string    `json:"source"`
	Started time.Time `json:"started"`
	Done    bool      `json:"done"`
	Progress
}

// Tracker holds the live run table behind /debug/progress. Runs
// register on Start and disappear on Done; a bounded ring of recently
// finished runs is retained for post-hoc inspection.
type Tracker struct {
	mu     sync.Mutex
	active map[string]*TrackedRun
	recent []RunStatus // most recent last, capped
}

// recentCap bounds the finished-run history.
const recentCap = 32

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{active: map[string]*TrackedRun{}}
}

// Start registers a run and returns its Observer handle. id should be
// unique among live runs (the server uses the request's content hash).
func (t *Tracker) Start(id, source string) *TrackedRun {
	r := &TrackedRun{
		t:      t,
		status: RunStatus{ID: id, Source: source, Started: time.Now()},
	}
	t.mu.Lock()
	t.active[id] = r
	t.mu.Unlock()
	return r
}

// Snapshot lists live runs (registration order not guaranteed) then
// recently finished ones.
func (t *Tracker) Snapshot() []RunStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RunStatus, 0, len(t.active)+len(t.recent))
	for _, r := range t.active {
		r.mu.Lock()
		out = append(out, r.status)
		r.mu.Unlock()
	}
	out = append(out, t.recent...)
	return out
}

// TrackedRun is one run's handle: an Observer plus Done.
type TrackedRun struct {
	t      *Tracker
	mu     sync.Mutex
	status RunStatus
}

func (r *TrackedRun) PhaseStart(phase string) {
	r.mu.Lock()
	r.status.Phase = phase
	r.mu.Unlock()
}

func (r *TrackedRun) PhaseDone(string, time.Duration) {}

func (r *TrackedRun) OnProgress(p Progress) {
	r.mu.Lock()
	r.status.Progress = p
	r.mu.Unlock()
}

// Done unregisters the run, moving its final status to the recent
// ring.
func (r *TrackedRun) Done() {
	r.mu.Lock()
	r.status.Done = true
	final := r.status
	r.mu.Unlock()

	r.t.mu.Lock()
	delete(r.t.active, final.ID)
	r.t.recent = append(r.t.recent, final)
	if len(r.t.recent) > recentCap {
		r.t.recent = r.t.recent[len(r.t.recent)-recentCap:]
	}
	r.t.mu.Unlock()
}
