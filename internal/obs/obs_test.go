package obs_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"critlock/internal/obs"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("requests_total", "Requests served.", nil)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration: same name returns the same metric.
	if again := r.Counter("requests_total", "dup", nil); again.Value() != 5 {
		t.Fatalf("re-registration returned a fresh counter")
	}

	g := r.Gauge("active", "Active runs.", nil)
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("phase_seconds", "Phase durations.", map[string]string{"phase": "walk"}, []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 5.555 {
		t.Fatalf("sum = %v, want 5.555", h.Sum())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("critlock_uploads_total", "Uploads.", nil).Add(2)
	r.Histogram("critlock_phase_seconds", "Phases.", map[string]string{"phase": "pass1"}, []float64{0.1, 1}).Observe(0.05)
	r.Histogram("critlock_phase_seconds", "Phases.", map[string]string{"phase": "walk"}, []float64{0.1, 1}).Observe(2)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP critlock_uploads_total Uploads.",
		"# TYPE critlock_uploads_total counter",
		"critlock_uploads_total 2",
		"# TYPE critlock_phase_seconds histogram",
		`critlock_phase_seconds_bucket{phase="pass1",le="0.1"} 1`,
		`critlock_phase_seconds_bucket{phase="pass1",le="+Inf"} 1`,
		`critlock_phase_seconds_bucket{phase="walk",le="1"} 0`,
		`critlock_phase_seconds_bucket{phase="walk",le="+Inf"} 1`,
		`critlock_phase_seconds_sum{phase="walk"} 2`,
		`critlock_phase_seconds_count{phase="pass1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The histogram family's HELP/TYPE header must appear exactly once
	// even with two labeled children.
	if n := strings.Count(out, "# TYPE critlock_phase_seconds histogram"); n != 1 {
		t.Errorf("TYPE header appears %d times, want 1", n)
	}
}

func TestCombineAndFuncs(t *testing.T) {
	var phases []string
	var got []obs.Progress
	o := obs.Combine(nil, obs.Funcs{
		Start:    func(p string) { phases = append(phases, p) },
		Progress: func(p obs.Progress) { got = append(got, p) },
	}, nil)
	if o == nil {
		t.Fatal("Combine dropped the non-nil observer")
	}
	o.PhaseStart("index")
	o.PhaseDone("index", time.Millisecond)
	o.OnProgress(obs.Progress{Phase: "index", Events: 10})
	if len(phases) != 1 || phases[0] != "index" || len(got) != 1 || got[0].Events != 10 {
		t.Fatalf("callbacks not delivered: phases=%v got=%v", phases, got)
	}
	if obs.Combine(nil, nil) != nil {
		t.Fatal("Combine(nil, nil) != nil")
	}
}

func TestInstrumentsDeltas(t *testing.T) {
	r := obs.NewRegistry()
	ins := obs.NewInstruments(r)
	run := ins.Run()
	// Cumulative snapshots: 100 then 250 events → counter must read 250.
	run.OnProgress(obs.Progress{Phase: "pass1", Events: 100, Segments: 1})
	run.OnProgress(obs.Progress{Phase: "pass1", Events: 250, Segments: 2, BytesSpilled: 512})
	// Phase boundary: pass3 re-reads the trace, restarting the event
	// cursor — its 50 events add on top of pass1's 250.
	run.OnProgress(obs.Progress{Phase: "pass3", Events: 50, Segments: 3, BytesSpilled: 512})
	run.PhaseDone("pass1", 5*time.Millisecond)

	snap := r.Snapshot()
	if got := snap["critlock_analysis_events_total"]; got != int64(300) {
		t.Errorf("events counter = %v, want 300", got)
	}
	if got := snap["critlock_analysis_segments_total"]; got != int64(3) {
		t.Errorf("segments counter = %v, want 3", got)
	}
	if got := snap["critlock_analysis_spilled_bytes_total"]; got != int64(512) {
		t.Errorf("spilled counter = %v, want 512", got)
	}
}

func TestTrackerLifecycle(t *testing.T) {
	tk := obs.NewTracker()
	run := tk.Start("abc", "trace")
	run.PhaseStart("walk")
	run.OnProgress(obs.Progress{Phase: "walk", Events: 7, TotalEvents: 10})

	snap := tk.Snapshot()
	if len(snap) != 1 || snap[0].ID != "abc" || snap[0].Phase != "walk" || snap[0].Events != 7 || snap[0].Done {
		t.Fatalf("live snapshot = %+v", snap)
	}

	run.Done()
	snap = tk.Snapshot()
	if len(snap) != 1 || !snap[0].Done {
		t.Fatalf("finished snapshot = %+v", snap)
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("n", "n", nil)
	h := r.Histogram("h", "h", nil, []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter=%d histogram count=%d, want 8000", c.Value(), h.Count())
	}
	if h.Sum() != 4000 {
		t.Fatalf("histogram sum=%v, want 4000", h.Sum())
	}
}
