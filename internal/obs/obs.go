// Package obs is critlock's self-instrumentation layer: a small
// dependency-free metrics registry (counters, gauges, histograms) with
// Prometheus-text and expvar exposition, plus the Observer/Progress
// hooks the analysis pipeline reports through. The analyzer that
// diagnoses other programs' bottlenecks should not itself be a black
// box: a long streaming run over millions of events exposes per-phase
// timers and live progress instead of silence.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics and renders them in Prometheus text
// format. Metric constructors are idempotent: asking twice for the
// same name (and label set) returns the same metric, so independent
// components can share families without coordination.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric // keyed by name + rendered labels
	order   []string          // registration order of keys
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]metric{}}
}

// metric is one registered instrument.
type metric interface {
	// family is the metric name without labels.
	family() string
	// kind is the Prometheus type: counter, gauge or histogram.
	kind() string
	// help is the one-line description.
	helpText() string
	// write renders the sample lines (no HELP/TYPE headers).
	write(w io.Writer)
	// snapshot returns an expvar-friendly value.
	snapshot() any
}

// register returns the existing metric under key or stores m.
func (r *Registry) register(key string, m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[key]; ok {
		return old
	}
	r.metrics[key] = m
	r.order = append(r.order, key)
	return m
}

// labelString renders a label map deterministically: {a="x",b="y"}.
// Empty labels render as "".
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing int64.
type Counter struct {
	name, labels, help string
	v                  atomic.Int64
}

// Counter returns (creating if needed) the counter name{labels}.
func (r *Registry) Counter(name, help string, labels map[string]string) *Counter {
	ls := labelString(labels)
	c := &Counter{name: name, labels: ls, help: help}
	return r.register(name+ls, c).(*Counter)
}

// Add increments the counter by n (n must be >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) family() string   { return c.name }
func (c *Counter) kind() string     { return "counter" }
func (c *Counter) helpText() string { return c.help }
func (c *Counter) snapshot() any    { return c.Value() }
func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "%s%s %d\n", c.name, c.labels, c.Value())
}

// Gauge is an instantaneous int64 value.
type Gauge struct {
	name, labels, help string
	v                  atomic.Int64
}

// Gauge returns (creating if needed) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels map[string]string) *Gauge {
	ls := labelString(labels)
	g := &Gauge{name: name, labels: ls, help: help}
	return r.register(name+ls, g).(*Gauge)
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) family() string   { return g.name }
func (g *Gauge) kind() string     { return "gauge" }
func (g *Gauge) helpText() string { return g.help }
func (g *Gauge) snapshot() any    { return g.Value() }
func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s%s %d\n", g.name, g.labels, g.Value())
}

// Histogram is a fixed-bucket distribution (Prometheus classic
// histogram semantics: cumulative buckets, _sum and _count series).
type Histogram struct {
	name, labels, help string
	bounds             []float64 // ascending upper bounds, +Inf implicit
	counts             []atomic.Int64
	count              atomic.Int64
	sumBits            atomic.Uint64 // float64 bits, CAS-updated
}

// DurationBuckets are the default upper bounds (seconds) for phase and
// request timers: 100µs to ~100s, roughly ×3 apart — analysis phases
// span six orders of magnitude between unit tests and 100M-event runs.
func DurationBuckets() []float64 {
	return []float64{
		0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03,
		0.1, 0.3, 1, 3, 10, 30, 100,
	}
}

// Histogram returns (creating if needed) the histogram name{labels}
// with the given bucket upper bounds (nil = DurationBuckets).
func (r *Registry) Histogram(name, help string, labels map[string]string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets()
	}
	ls := labelString(labels)
	h := &Histogram{
		name:   name,
		labels: ls,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)),
	}
	return r.register(name+ls, h).(*Histogram)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) family() string   { return h.name }
func (h *Histogram) kind() string     { return "histogram" }
func (h *Histogram) helpText() string { return h.help }
func (h *Histogram) snapshot() any {
	return map[string]any{"count": h.Count(), "sum": h.Sum()}
}

// bucketLabels splices le into the (possibly empty) label set.
func (h *Histogram) bucketLabels(le string) string {
	if h.labels == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return h.labels[:len(h.labels)-1] + fmt.Sprintf(",le=%q", le) + "}"
}

func (h *Histogram) write(w io.Writer) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, h.bucketLabels(formatFloat(b)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, h.bucketLabels("+Inf"), h.Count())
	fmt.Fprintf(w, "%s_sum%s %s\n", h.name, h.labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, h.labels, h.Count())
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format, grouped by family with HELP/TYPE headers emitted
// once per family, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	ms := make([]metric, len(keys))
	for i, k := range keys {
		ms[i] = r.metrics[k]
	}
	r.mu.Unlock()

	seen := map[string]bool{}
	for _, m := range ms {
		if !seen[m.family()] {
			seen[m.family()] = true
			fmt.Fprintf(w, "# HELP %s %s\n", m.family(), m.helpText())
			fmt.Fprintf(w, "# TYPE %s %s\n", m.family(), m.kind())
		}
		m.write(w)
	}
}

// Snapshot returns every metric's current value keyed by its full name
// (including labels) — the expvar view.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.metrics))
	for k, m := range r.metrics {
		out[k] = m.snapshot()
	}
	return out
}

// publishOnce guards expvar.Publish, which panics on duplicate names
// (tests construct many registries in one process).
var publishMu sync.Mutex

// PublishExpvar exposes the registry's Snapshot under the given expvar
// name (visible at /debug/vars). Publishing the same name twice is a
// no-op: the first registry wins.
func (r *Registry) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
