package clrt

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"critlock/internal/core"
	"critlock/internal/trace"
)

// capture runs body as an instrumented main (bootstrap root, run,
// End) and returns the validated recorded trace. It mirrors what Main
// does minus the file output.
func capture(t *testing.T, body func()) *trace.Trace {
	t.Helper()
	resetForTest()
	t.Cleanup(resetForTest)

	p := cur() // bootstrap root on the test goroutine
	_ = p
	body()

	st.mu.Lock()
	rt, root := st.rt, st.root
	st.finished = true
	st.mu.Unlock()
	tr, _, err := rt.End(root)
	if err != nil {
		t.Fatalf("End: %v", err)
	}
	if verr := trace.Validate(tr); verr != nil {
		t.Fatalf("trace invalid: %v", verr)
	}
	return tr
}

func analyze(t *testing.T, tr *trace.Trace) *core.Analysis {
	t.Helper()
	an, err := core.Analyze(tr, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return an
}

func lockByName(an *core.Analysis, name string) *core.LockStats {
	for i := range an.Locks {
		if an.Locks[i].Name == name {
			return &an.Locks[i]
		}
	}
	return nil
}

func TestMutexContention(t *testing.T) {
	var mu Mutex
	mu.SetName("test.mu")
	counter := 0
	tr := capture(t, func() {
		var wg WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			Go(fmt.Sprintf("worker-%d", w), func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					mu.Lock()
					counter++
					spin(5 * time.Microsecond)
					mu.Unlock()
				}
			})
		}
		wg.Wait()
	})
	if counter != 200 {
		t.Fatalf("counter = %d, want 200 (mutual exclusion broken)", counter)
	}
	an := analyze(t, tr)
	ls := lockByName(an, "test.mu")
	if ls == nil {
		t.Fatalf("lock test.mu missing from analysis; locks: %+v", an.Locks)
	}
	if ls.TotalInvocations != 200 {
		t.Errorf("acquisitions = %d, want 200", ls.TotalInvocations)
	}
}

// spin busy-waits so critical sections have measurable width.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

func TestRWMutexSharedReaders(t *testing.T) {
	var mu RWMutex
	mu.SetName("test.rw")
	val := 0
	tr := capture(t, func() {
		var wg WaitGroup
		wg.Add(3)
		for r := 0; r < 2; r++ {
			Go("reader", func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					mu.RLock()
					_ = val
					mu.RUnlock()
				}
			})
		}
		Go("writer", func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				mu.Lock()
				val++
				mu.Unlock()
			}
		})
		wg.Wait()
	})
	if val != 20 {
		t.Fatalf("val = %d, want 20", val)
	}
	an := analyze(t, tr)
	ls := lockByName(an, "test.rw")
	if ls == nil {
		t.Fatal("lock test.rw missing from analysis")
	}
	if ls.TotalInvocations != 60 {
		t.Errorf("acquisitions = %d, want 60 (40 shared + 20 exclusive)", ls.TotalInvocations)
	}
}

func TestTryLockAndTryRLock(t *testing.T) {
	var mu Mutex
	var rw RWMutex
	capture(t, func() {
		if !mu.TryLock() {
			t.Error("TryLock on free mutex failed")
		}
		mu.Unlock()
		if !rw.TryRLock() {
			t.Error("TryRLock on free rwmutex failed")
		}
		// A second reader on another thread succeeds while this read
		// hold is live (shared, not exclusive).
		ok := MakeChan[bool]("try.ok", 0)
		Go("reader2", func() {
			r := rw.TryRLock()
			if r {
				rw.RUnlock()
			}
			ok.Send(r)
		})
		if !ok.Recv1() {
			t.Error("concurrent TryRLock on read-held rwmutex failed")
		}
		rw.RUnlock()
		if !rw.TryLock() {
			t.Error("TryLock on free rwmutex failed")
		}
		rw.Unlock()
	})
}

func TestChanPayloadsAndClose(t *testing.T) {
	tr := capture(t, func() {
		ch := MakeChan[int]("test.jobs", 2)
		done := MakeChan[int]("test.done", 0)
		var got []int
		Go("consumer", func() {
			sum := 0
			for {
				v, ok := ch.Recv()
				if !ok {
					break
				}
				got = append(got, v)
				sum += v
			}
			done.Send(sum)
		})
		for i := 1; i <= 5; i++ {
			ch.Send(i * 10)
		}
		ch.Close()
		if sum := done.Recv1(); sum != 150 {
			t.Errorf("sum = %d, want 150", sum)
		}
		if len(got) != 5 || got[0] != 10 || got[4] != 50 {
			t.Errorf("got = %v, want [10 20 30 40 50] in order", got)
		}
		// Closed-and-drained receive yields the zero value.
		if v, ok := ch.Recv(); ok || v != 0 {
			t.Errorf("recv on closed chan = (%d,%v), want (0,false)", v, ok)
		}
	})
	analyze(t, tr) // must not error on the channel events
}

func TestChanLenCap(t *testing.T) {
	capture(t, func() {
		ch := MakeChan[string]("test.buf", 3)
		if ch.Len() != 0 || ch.Cap() != 3 {
			t.Errorf("len,cap = %d,%d, want 0,3", ch.Len(), ch.Cap())
		}
		ch.Send("a")
		ch.Send("b")
		if ch.Len() != 2 {
			t.Errorf("len = %d, want 2", ch.Len())
		}
		if v := ch.Recv1(); v != "a" {
			t.Errorf("recv = %q, want \"a\" (FIFO)", v)
		}
	})
}

func TestSelect(t *testing.T) {
	capture(t, func() {
		a := MakeChan[int]("test.a", 1)
		b := MakeChan[int]("test.b", 1)
		var nilch Chan[int]

		// Default fires when nothing is ready.
		if k, _, _ := Select(true, RecvCase(a), RecvCase(b)); k != -1 {
			t.Errorf("select with nothing ready chose %d, want -1", k)
		}
		b.Send(7)
		k, v, ok := Select(false, RecvCase(a), RecvCase(b), RecvCase(nilch))
		if k != 1 || !ok || Val[int](v) != 7 {
			t.Errorf("select = (%d,%v,%v), want (1,7,true)", k, v, ok)
		}
		// Send arm with a nil arm before it: index maps back correctly.
		k, _, _ = Select(false, RecvCase(nilch), SendCase(a, 42))
		if k != 1 {
			t.Errorf("select send chose %d, want 1", k)
		}
		if got := a.Recv1(); got != 42 {
			t.Errorf("sent value = %d, want 42", got)
		}
		// All-nil arms with default.
		if k, _, _ := Select(true, RecvCase(nilch)); k != -1 {
			t.Errorf("all-nil select chose %d, want -1", k)
		}
	})
}

func TestWaitGroupNegativePanics(t *testing.T) {
	capture(t, func() {
		var wg WaitGroup
		defer func() {
			if recover() == nil {
				t.Error("negative WaitGroup counter did not panic")
			}
		}()
		wg.Add(-1)
	})
}

func TestEmbeddedAndPointerMutex(t *testing.T) {
	type account struct {
		Mutex // embedded: promoted Lock/Unlock, as after rewriting
		bal   int
	}
	deposit := func(a *account, n int) { // lock reached via pointer
		a.Lock()
		a.bal += n
		a.Unlock()
	}
	acct := &account{}
	tr := capture(t, func() {
		var wg WaitGroup
		wg.Add(2)
		for w := 0; w < 2; w++ {
			Go("depositor", func() {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					deposit(acct, 2)
				}
			})
		}
		wg.Wait()
	})
	if acct.bal != 100 {
		t.Fatalf("balance = %d, want 100", acct.bal)
	}
	an := analyze(t, tr)
	// Auto-named from first call site; exactly one lock besides the
	// WaitGroup internals.
	var found bool
	for _, ls := range an.Locks {
		if ls.TotalInvocations == 50 {
			found = true
		}
	}
	if !found {
		t.Errorf("no lock with 50 acquisitions; locks: %+v", an.Locks)
	}
}

func TestMainWritesTrace(t *testing.T) {
	resetForTest()
	t.Cleanup(resetForTest)
	dir := t.TempDir()
	out := filepath.Join(dir, "t.cltr")
	t.Setenv("CRITLOCK_OUT", out)
	t.Setenv("CRITLOCK_QUIET", "1")

	var mu Mutex
	mu.SetName("main.mu")
	Main(func() {
		var wg WaitGroup
		wg.Add(1)
		Go("w", func() {
			defer wg.Done()
			mu.Lock()
			spin(time.Microsecond)
			mu.Unlock()
		})
		wg.Wait()
	})

	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	an := analyze(t, tr)
	if lockByName(an, "main.mu") == nil {
		t.Error("main.mu missing from analysis of written trace")
	}
}

func TestForeignGoroutineAdopted(t *testing.T) {
	var mu Mutex
	mu.SetName("adopt.mu")
	tr := capture(t, func() {
		mu.Lock()
		mu.Unlock()
		var wg sync.WaitGroup // raw goroutine, as un-instrumented library code would spawn
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			mu.Unlock()
		}()
		wg.Wait()
	})
	an := analyze(t, tr)
	ls := lockByName(an, "adopt.mu")
	if ls == nil || ls.TotalInvocations != 2 {
		t.Fatalf("adopted goroutine's acquisition lost: %+v", ls)
	}
}
