package clrt

import (
	"sync"

	"critlock/internal/harness"
)

// WaitGroup is the traced drop-in replacement for sync.WaitGroup,
// built on a traced mutex + condition variable so that Wait blocking
// shows up in the trace with a real waker edge (the Add(-1) that
// dropped the counter to zero broadcasts, and the walk attributes the
// wake to that thread). Semantics match sync.WaitGroup, including the
// panic on a negative counter.
type WaitGroup struct {
	name  string
	once  sync.Once
	m     harness.Mutex
	c     harness.Cond
	count int
}

// SetName sets the name the wait group's internals report under; see
// Mutex.SetName.
func (wg *WaitGroup) SetName(name string) { wg.name = name }

func (wg *WaitGroup) init() {
	wg.once.Do(func() {
		n := wg.name
		if n == "" {
			n = autoName("waitgroup")
		}
		rt := ensureRuntime()
		wg.m = rt.NewMutex(n + ".mu")
		wg.c = rt.NewCond(n + ".cv")
	})
}

// Add adds delta, which may be negative, to the counter. If the
// counter reaches zero all threads blocked in Wait are released; if it
// goes negative Add panics.
func (wg *WaitGroup) Add(delta int) {
	wg.init()
	p := cur()
	p.Lock(wg.m)
	wg.count += delta
	if wg.count < 0 {
		p.Unlock(wg.m)
		panic("sync: negative WaitGroup counter")
	}
	if wg.count == 0 {
		p.Broadcast(wg.c)
	}
	p.Unlock(wg.m)
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks until the counter is zero.
func (wg *WaitGroup) Wait() {
	wg.init()
	p := cur()
	p.Lock(wg.m)
	for wg.count != 0 {
		p.Wait(wg.c, wg.m)
	}
	p.Unlock(wg.m)
}
