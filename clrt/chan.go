package clrt

import (
	"time"

	"critlock/internal/harness"
)

// Chan is the traced drop-in replacement for a Go channel of element
// type T. The instrumenter rewrites `chan T` types to Chan[T],
// `make(chan T, n)` to MakeChan, and send/recv/close/len/cap sites to
// the corresponding methods; payload values flow through the traced
// channel with Go's exact semantics (FIFO buffering, rendezvous
// hand-off, close-and-drain, zero value on closed-empty receive).
//
// The zero Chan is a nil channel: Send and Recv block forever and
// Close panics, as in Go. Chan values are comparable and copyable like
// the chan references they replace.
type Chan[T any] struct {
	h harness.Chan
}

// MakeChan creates a traced channel with the given name (analysis
// tables show it) and buffer capacity; it is the rewritten form of
// make(chan T, capacity).
func MakeChan[T any](name string, capacity int) Chan[T] {
	return Chan[T]{h: ensureRuntime().NewChan(name, capacity)}
}

// cast converts a payload back to T. A nil payload (anonymous token,
// or the zero report from a closed drained channel) yields T's zero
// value.
func cast[T any](v any) T {
	if v == nil {
		var zero T
		return zero
	}
	return v.(T)
}

// blockForever parks the calling goroutine permanently — the behavior
// of sending to or receiving from a nil channel.
func blockForever() {
	select {}
}

// IsNil reports whether c is the zero (nil) channel; the instrumenter
// rewrites `ch == nil` / `ch != nil` comparisons onto it.
func (c Chan[T]) IsNil() bool { return c.h == nil }

// Send sends v, blocking until a receiver or buffer slot is available.
// Sending on a closed channel panics; sending on a nil channel blocks
// forever.
func (c Chan[T]) Send(v T) {
	if c.h == nil {
		blockForever()
	}
	valproc().SendVal(c.h, v)
}

// Recv receives a value, blocking until one is available or the
// channel is closed; ok is false iff the channel is closed and
// drained, in which case the value is T's zero. Receiving from a nil
// channel blocks forever.
func (c Chan[T]) Recv() (T, bool) {
	if c.h == nil {
		blockForever()
	}
	v, ok := valproc().RecvVal(c.h)
	return cast[T](v), ok
}

// Recv1 is Recv discarding the ok flag — the rewritten form of a
// single-valued `<-ch` expression.
func (c Chan[T]) Recv1() T {
	v, _ := c.Recv()
	return v
}

// Close closes the channel. Closing a closed or nil channel panics, as
// in Go.
func (c Chan[T]) Close() {
	if c.h == nil {
		panic("close of nil channel")
	}
	cur().Close(c.h)
}

// Len returns the number of values buffered, the rewritten len(ch).
func (c Chan[T]) Len() int {
	if c.h == nil {
		return 0
	}
	return valproc().ChanLen(c.h)
}

// Cap returns the buffer capacity, the rewritten cap(ch).
func (c Chan[T]) Cap() int {
	if c.h == nil {
		return 0
	}
	return c.h.Cap()
}

// SelCase is one arm of Select, built with SendCase or RecvCase.
type SelCase struct {
	h    harness.Chan
	send bool
	val  any
}

// SendCase builds a select arm that sends v on c. A nil channel yields
// a never-ready arm, as in Go.
func SendCase[T any](c Chan[T], v T) SelCase {
	return SelCase{h: c.h, send: true, val: v}
}

// RecvCase builds a select arm that receives from c. A nil channel
// yields a never-ready arm.
func RecvCase[T any](c Chan[T]) SelCase {
	return SelCase{h: c.h}
}

// Select runs a select over the given arms, blocking unless def is
// true (the statement had a default clause). It returns the index of
// the chosen arm in cases (-1 for default), the received value for a
// receive arm (cast it with Val), and the receive's ok flag. Ready
// arms are chosen by lowest index; Go's uniform-random choice is a
// superset of this behavior, and a fixed order keeps traces
// reproducible under CRITLOCK_SEED.
func Select(def bool, cases ...SelCase) (int, any, bool) {
	// Nil-channel arms can never fire; compact them out and map the
	// chosen index back, so the harness only sees real channels.
	hc := make([]harness.SelectCase, 0, len(cases))
	vals := make([]any, 0, len(cases))
	idx := make([]int, 0, len(cases))
	for i, sc := range cases {
		if sc.h == nil {
			continue
		}
		hc = append(hc, harness.SelectCase{Ch: sc.h, Send: sc.send})
		vals = append(vals, sc.val)
		idx = append(idx, i)
	}
	if len(hc) == 0 {
		if def {
			return -1, nil, false
		}
		blockForever()
	}
	k, v, ok := valproc().SelectVal(hc, vals, def)
	if k < 0 {
		return -1, nil, false
	}
	return idx[k], v, ok
}

// Val converts a value returned by Select back to the receive arm's
// element type; the instrumenter inserts it at the top of each receive
// case body.
func Val[T any](v any) T { return cast[T](v) }

// Cast converts a value returned by Select back to this channel's
// element type. The receiver only supplies the type — the instrumenter
// calls it on the select arm's channel temp so it never has to render
// T's spelling itself.
func (c Chan[T]) Cast(v any) T { return cast[T](v) }

// Nil returns the nil channel of c's element type — the rewritten form
// of assigning nil to an instrumented channel variable (the idiom that
// disables a select arm).
func (c Chan[T]) Nil() Chan[T] { return Chan[T]{} }

// After is the traced shim for time.After: it returns an instrumented
// buffered channel that delivers the current time after d, so timeout
// arms in rewritten selects stay inside the traced world. The timer
// fires from an untracked goroutine; only the delivery is traced.
func After(d time.Duration) Chan[time.Time] {
	c := MakeChan[time.Time]("time.After", 1)
	go func() {
		time.Sleep(d)
		c.Send(time.Now())
	}()
	return c
}
