// Package clrt is the runtime support library for instrumented Go
// programs: drop-in replacements for sync.Mutex, sync.RWMutex,
// sync.WaitGroup, channels and the go statement that record every
// synchronization event to a critlock trace while preserving the
// original program's semantics.
//
// Application code does not import this package by hand — cmd/clainstr
// rewrites a copy of a target module so that its sync primitives land
// here (see internal/instr and docs/GUIDE.md). The rewritten types are
// method-compatible with their sync counterparts, so call sites
// (mu.Lock(), defer mu.Unlock(), wg.Wait(), promoted methods of
// embedded mutexes, locks passed by pointer) compile unchanged; only
// type names, go statements, channel operations and main itself are
// rewritten.
//
// The instrumented process runs on an internal/livetrace Runtime: real
// goroutines, sync.Mutex-backed primitives, monotonic timestamps, and
// try-lock contention detection — the paper's interposition-library
// strategy. The current thread's execution context is resolved through
// a goroutine-id registry (the GoChan tracer technique): clrt.Go
// registers the child goroutine before its body runs, and every
// primitive looks the calling goroutine up on entry.
//
// Output is controlled by environment variables, read when the
// instrumented main returns (or clrt.Exit runs):
//
//	CRITLOCK_SEGDIR  write a segmented trace directory (bounded-memory
//	                 streaming format; analyze with cla -segdir)
//	CRITLOCK_OUT     write a binary trace file (default critlock.cltr
//	                 when CRITLOCK_SEGDIR is unset)
//	CRITLOCK_SEED    seed for per-thread PRNGs (default 0)
//	CRITLOCK_QUIET   suppress the one-line summary printed to stderr
package clrt

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"critlock/internal/harness"
	"critlock/internal/livetrace"
	"critlock/internal/segment"
	"critlock/internal/trace"
)

// st is the per-process recording state. An instrumented process holds
// exactly one recording; tests reset it between cases.
var st struct {
	mu        sync.Mutex
	rt        *livetrace.Runtime
	root      harness.Proc
	rootID    int64
	rootTaken bool
	finished  bool
}

// procs maps goroutine id -> harness.Proc for every goroutine spawned
// through Go (plus the root and any adopted foreigners). Goroutine ids
// are never reused by the Go runtime, so a stale entry can only leak,
// never alias; Go deletes entries when bodies return.
var procs sync.Map

var foreignWarn sync.Once

// goid parses the calling goroutine's id out of its stack header
// ("goroutine N [running]:"). There is no supported API for this; the
// parse is the standard trick and costs about a microsecond, which is
// acceptable next to the mutex and channel work being traced.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = "goroutine "
	s := buf[len(prefix):n]
	var id int64
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// ensureRuntimeLocked creates the process-wide live runtime on first
// touch. Callers hold st.mu.
func ensureRuntimeLocked() *livetrace.Runtime {
	if st.rt == nil {
		seed, _ := strconv.ParseInt(os.Getenv("CRITLOCK_SEED"), 10, 64)
		st.rt = livetrace.New(livetrace.Config{Seed: seed})
		st.rt.SetMeta("instrumenter", "clainstr")
		if len(os.Args) > 0 {
			st.rt.SetMeta("program", os.Args[0])
		}
	}
	return st.rt
}

// ensureRuntime is ensureRuntimeLocked for callers not holding st.mu.
func ensureRuntime() *livetrace.Runtime {
	st.mu.Lock()
	defer st.mu.Unlock()
	return ensureRuntimeLocked()
}

// cur resolves the calling goroutine's execution context. The first
// goroutine to touch an instrumented primitive becomes the root thread
// (lock use in package init runs before Main); any later goroutine not
// spawned through Go — created by un-instrumented library code — is
// adopted with an approximate creation edge rather than crashing.
func cur() harness.Proc {
	id := goid()
	if p, ok := procs.Load(id); ok {
		return p.(harness.Proc)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if p, ok := procs.Load(id); ok {
		return p.(harness.Proc)
	}
	rt := ensureRuntimeLocked()
	if !st.rootTaken {
		st.rootTaken = true
		p, err := rt.Begin("main")
		if err != nil {
			panic("clrt: " + err.Error())
		}
		st.root, st.rootID = p, id
		procs.Store(id, p)
		return p
	}
	foreignWarn.Do(func() {
		fmt.Fprintln(os.Stderr, "critlock/clrt: goroutine created outside instrumented code touched a traced primitive; adopting it (creation edge approximate)")
	})
	p := rt.Adopt(fmt.Sprintf("adopted-%d", id))
	procs.Store(id, p)
	return p
}

// valproc is cur narrowed to the live backend's payload extension.
func valproc() livetrace.ValProc {
	return cur().(livetrace.ValProc)
}

// autoName names a lazily-registered object after the first
// instrumented call site that touched it — the nearest frame outside
// clrt and the runtime — e.g. "mutex@server.go:142". The instrumenter
// injects explicit names where a declaration site is nameable; this is
// the fallback for struct fields and other per-instance objects.
func autoName(kind string) string {
	var pcs [16]uintptr
	n := runtime.Callers(3, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	for {
		f, more := frames.Next()
		if f.Function != "" &&
			!strings.Contains(f.File, "/clrt/") &&
			!strings.HasPrefix(f.Function, "sync.") &&
			!strings.HasPrefix(f.Function, "runtime.") {
			file := f.File
			if i := strings.LastIndexByte(file, '/'); i >= 0 {
				file = file[i+1:]
			}
			return fmt.Sprintf("%s@%s:%d", kind, file, f.Line)
		}
		if !more {
			return kind
		}
	}
}

// Go is the rewritten form of the go statement: it spawns fn as a
// traced thread (create/start/exit events, join edges) and registers
// the child goroutine so primitives inside fn resolve their context.
// The instrumenter binds the original call's function and arguments
// before calling Go, preserving the go statement's evaluation order.
func Go(name string, fn func()) {
	p := cur()
	p.Go(name, func(q harness.Proc) {
		id := goid()
		procs.Store(id, q)
		defer procs.Delete(id)
		fn()
	})
}

// Main is the rewritten program entry point: the instrumenter wraps
// the target's func main body in a closure and hands it here. Main
// starts the recording (unless package init already did, via a traced
// primitive), runs the body, waits for traced threads, and writes the
// trace. A panic in the body still flushes the trace before being
// re-raised; panics recovered in traced child threads are reported on
// stderr after the run.
func Main(body func()) {
	p := cur()
	st.mu.Lock()
	if st.rootID != goid() {
		st.mu.Unlock()
		panic("clrt: Main must run on the goroutine that started the recording")
	}
	st.mu.Unlock()
	_ = p

	var panicked any
	didPanic := false
	func() {
		defer func() {
			if r := recover(); r != nil || didPanic {
				panicked = r
			}
		}()
		didPanic = true
		body()
		didPanic = false
	}()

	flushEnd()
	if didPanic {
		panic(panicked)
	}
}

// flushEnd closes the recording via End (waiting for spawned threads)
// and writes the configured outputs.
func flushEnd() {
	st.mu.Lock()
	if st.finished || st.rt == nil {
		st.mu.Unlock()
		return
	}
	st.finished = true
	rt, root := st.rt, st.root
	st.mu.Unlock()

	tr, elapsed, err := rt.End(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "critlock/clrt:", err)
	}
	writeOutputs(tr, elapsed)
}

// Exit is the rewritten form of os.Exit: it snapshots and writes the
// trace without waiting for running threads (os.Exit must not block),
// then exits with code. Threads cut down mid-critical-section can
// leave validation warnings in the trace; analyze such traces with
// validation off.
func Exit(code int) {
	st.mu.Lock()
	if st.finished || st.rt == nil {
		st.mu.Unlock()
		os.Exit(code)
	}
	st.finished = true
	rt := st.rt
	st.mu.Unlock()

	tr, elapsed := rt.EndNow()
	writeOutputs(tr, elapsed)
	os.Exit(code)
}

// writeOutputs writes the trace per CRITLOCK_SEGDIR / CRITLOCK_OUT and
// prints the one-line summary unless CRITLOCK_QUIET is set.
func writeOutputs(tr *trace.Trace, elapsed trace.Time) {
	segdir := os.Getenv("CRITLOCK_SEGDIR")
	out := os.Getenv("CRITLOCK_OUT")
	var wrote []string
	if segdir != "" {
		if err := segment.WriteTrace(segdir, tr, segment.Options{}); err != nil {
			fmt.Fprintln(os.Stderr, "critlock/clrt: writing segments:", err)
		} else {
			wrote = append(wrote, segdir)
		}
	}
	if out == "" && segdir == "" {
		out = "critlock.cltr"
	}
	if out != "" {
		if err := writeTraceFile(out, tr); err != nil {
			fmt.Fprintln(os.Stderr, "critlock/clrt: writing trace:", err)
		} else {
			wrote = append(wrote, out)
		}
	}
	if os.Getenv("CRITLOCK_QUIET") == "" {
		fmt.Fprintf(os.Stderr, "critlock: recorded %d events over %.1f ms -> %s\n",
			len(tr.Events), float64(elapsed)/1e6, strings.Join(wrote, ", "))
	}
}

func writeTraceFile(path string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteBinary(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// resetForTest clears the per-process recording state so tests can run
// several captures in one process. Instrumented programs never call it.
func resetForTest() {
	st.mu.Lock()
	st.rt, st.root, st.rootID, st.rootTaken, st.finished = nil, nil, 0, false, false
	st.mu.Unlock()
	procs.Range(func(k, _ any) bool { procs.Delete(k); return true })
}
