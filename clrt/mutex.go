package clrt

import (
	"sync"

	"critlock/internal/harness"
	"critlock/internal/livetrace"
)

// Mutex is the traced drop-in replacement for sync.Mutex. The zero
// value is ready to use, locks passed by pointer and struct-embedded
// mutexes behave exactly as with sync.Mutex, and Lock/Unlock/TryLock
// have sync's blocking semantics (backed by a real sync.Mutex in the
// live runtime) with acquire/obtain/release events recorded around
// them.
//
// The mutex registers itself in the trace on first use. The
// instrumenter injects SetName calls for named declarations (package
// vars, local vars); anonymous instances (struct fields, map values)
// fall back to "mutex@file:line" of the first call site that locked
// them.
type Mutex struct {
	name string
	once sync.Once
	h    harness.Mutex
}

// SetName sets the name this mutex reports under in analysis output.
// It must be called before the first Lock/TryLock; later calls have no
// effect (the trace object is registered once).
func (m *Mutex) SetName(name string) { m.name = name }

func (m *Mutex) handle(kind string) harness.Mutex {
	m.once.Do(func() {
		n := m.name
		if n == "" {
			n = autoName(kind)
		}
		m.h = ensureRuntime().NewMutex(n)
	})
	return m.h
}

// Lock acquires the mutex, blocking while another thread holds it; the
// wait and the hand-off edge are recorded.
func (m *Mutex) Lock() { cur().Lock(m.handle("mutex")) }

// Unlock releases the mutex. Unlocking a mutex the calling thread does
// not hold panics, as sync.Mutex would (fatally) crash.
func (m *Mutex) Unlock() { cur().Unlock(m.handle("mutex")) }

// TryLock acquires the mutex if it is free and reports whether it did.
// A failed try emits no trace events, matching the analysis model.
func (m *Mutex) TryLock() bool { return cur().TryLock(m.handle("mutex")) }

var _ sync.Locker = (*Mutex)(nil)

// RWMutex is the traced drop-in replacement for sync.RWMutex. Reader
// acquisitions are recorded as shared holds (TYPE 1/TYPE 2 metrics
// account them per the paper's read-lock treatment); writer
// acquisitions are exclusive.
type RWMutex struct {
	name string
	once sync.Once
	h    harness.Mutex
}

// SetName sets the name this lock reports under; see Mutex.SetName.
func (m *RWMutex) SetName(name string) { m.name = name }

func (m *RWMutex) handle() harness.Mutex {
	m.once.Do(func() {
		n := m.name
		if n == "" {
			n = autoName("rwmutex")
		}
		m.h = ensureRuntime().NewMutex(n)
	})
	return m.h
}

// Lock acquires the write lock.
func (m *RWMutex) Lock() { cur().Lock(m.handle()) }

// Unlock releases the write lock.
func (m *RWMutex) Unlock() { cur().Unlock(m.handle()) }

// TryLock acquires the write lock if immediately available.
func (m *RWMutex) TryLock() bool { return cur().TryLock(m.handle()) }

// RLock acquires a read (shared) lock.
func (m *RWMutex) RLock() { cur().RLock(m.handle()) }

// RUnlock releases a read lock. Releasing without a matching RLock
// panics before the trace can be corrupted.
func (m *RWMutex) RUnlock() { cur().RUnlock(m.handle()) }

// TryRLock acquires a read lock if immediately available.
func (m *RWMutex) TryRLock() bool {
	return cur().(livetrace.TryRLocker).TryRLock(m.handle())
}

// RLocker returns a sync.Locker whose Lock/Unlock are RLock/RUnlock,
// mirroring sync.RWMutex.RLocker.
func (m *RWMutex) RLocker() sync.Locker { return rlocker{m} }

type rlocker struct{ m *RWMutex }

//lint:ignore missingunlock Lock is the adapter's acquire half; the caller releases via rlocker.Unlock
func (r rlocker) Lock()   { r.m.RLock() }
func (r rlocker) Unlock() { r.m.RUnlock() }

var _ sync.Locker = (*RWMutex)(nil)
